package serve

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// degradeFixture builds a small live service with a trained DT registered
// under "dt" and returns the pieces the degradation tests poke at.
func degradeFixture(t *testing.T, svcCfg Config) (*Service, []*dataset.Partition, []float64, [][]float64) {
	t.Helper()
	ds := dataset.SyntheticClassification(12, 4, 2, 3.0, 9)
	parts, err := dataset.VerticalPartition(ds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(parts, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(sess, parts, svcCfg)
	if err != nil {
		sess.Close()
		t.Fatal(err)
	}
	mdl, err := core.Train(sess, core.TrainSpec{Model: core.KindDT})
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	if _, err := svc.Register("dt", mdl); err != nil {
		svc.Close()
		t.Fatal(err)
	}
	oracle, err := core.PredictAll(sess, mdl, parts)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	return svc, parts, oracle, flatRows(parts, svc.Width())
}

// TestServiceDegradeAndRebuild is the graceful-degradation round trip: a
// session killed under the service fails requests with the retry-after
// hint, the Rebuild factory restarts it behind the registry, and the
// basic-protocol model keeps serving the same predictions afterwards.
func TestServiceDegradeAndRebuild(t *testing.T) {
	var parts []*dataset.Partition
	cfg := Config{RetryAfter: 250 * time.Millisecond}
	cfg.Rebuild = func() (*core.Session, error) {
		return core.NewSession(parts, fixtureConfig())
	}
	svc, p, oracle, rows := degradeFixture(t, cfg)
	parts = p
	defer svc.Close()

	if got, err := svc.Predict("dt", rows[0]); err != nil || got != oracle[0] {
		t.Fatalf("healthy predict = %v, %v (want %v)", got, err, oracle[0])
	}
	if h := svc.Health(); !h.Healthy {
		t.Fatalf("health before fault: %+v", h)
	}

	// Fault injection: kill the session out from under the service, as a
	// crashed peer or aborted network would.
	svc.Session().Close()
	if h := svc.Health(); h.Healthy || h.RetryAfterMs != 250 {
		t.Fatalf("health after fault: %+v", h)
	}

	// The request that trips over the corpse gets the retry-after error.
	_, err := svc.Predict("dt", rows[0])
	var ue *UnavailableError
	if !errors.Is(err, ErrUnavailable) || !errors.As(err, &ue) || ue.RetryAfter != 250*time.Millisecond {
		t.Fatalf("predict on dead session = %v", err)
	}

	// The background rebuild must restore service.
	deadline := time.Now().Add(15 * time.Second)
	for !svc.Health().Healthy {
		if time.Now().After(deadline) {
			t.Fatal("service did not recover")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, row := range rows {
		got, err := svc.Predict("dt", row)
		if err != nil {
			t.Fatalf("post-rebuild sample %d: %v", i, err)
		}
		if got != oracle[i] {
			t.Fatalf("post-rebuild sample %d = %v, want %v", i, got, oracle[i])
		}
	}
	st := svc.Stats()
	if st.Serve.Rebuilds != 1 || st.Serve.Unavailable < 1 {
		t.Fatalf("degradation counters: %+v", st.Serve)
	}
}

// TestServiceUnavailableNoRebuild pins the degradation floor without a
// factory: the service keeps refusing work with the hint instead of
// panicking or hanging, and still closes cleanly.
func TestServiceUnavailableNoRebuild(t *testing.T) {
	svc, _, _, rows := degradeFixture(t, Config{RetryAfter: 1500 * time.Millisecond})
	defer svc.Close()

	svc.Session().Close()
	// First request trips the fault; later ones are refused at admission.
	for i := 0; i < 2; i++ {
		_, err := svc.Predict("dt", rows[0])
		var ue *UnavailableError
		if !errors.As(err, &ue) || ue.RetryAfter != 1500*time.Millisecond {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if h := svc.Health(); h.Healthy || h.RetryAfterMs != 1500 {
		t.Fatalf("health: %+v", h)
	}
	st := svc.Stats()
	if st.Serve.Rebuilds != 0 || st.Serve.Unavailable < 1 {
		t.Fatalf("degradation counters: %+v", st.Serve)
	}
}

// TestServerUnavailableWire checks the degradation surface over the wire:
// opUnavail round-trips into an *UnavailableError with the hint, and the
// health probe reports unhealthy.
func TestServerUnavailableWire(t *testing.T) {
	svc, _, oracle, rows := degradeFixture(t, Config{RetryAfter: 300 * time.Millisecond})
	srv, err := NewServer(svc, "127.0.0.1:0")
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer func() { srv.Shutdown(); time.Sleep(50 * time.Millisecond) }()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if h, err := cli.Health(); err != nil || !h.Healthy {
		t.Fatalf("health = %+v, %v", h, err)
	}
	if preds, err := cli.Predict("dt", rows[:1]); err != nil || preds[0] != oracle[0] {
		t.Fatalf("predict = %v, %v", preds, err)
	}

	svc.Session().Close()
	_, err = cli.Predict("dt", rows[:1])
	var ue *UnavailableError
	if !errors.Is(err, ErrUnavailable) || !errors.As(err, &ue) || ue.RetryAfter != 300*time.Millisecond {
		t.Fatalf("predict over wire on dead session = %v", err)
	}
	if h, err := cli.Health(); err != nil || h.Healthy || h.RetryAfterMs != 300 {
		t.Fatalf("health after fault = %+v, %v", h, err)
	}
}

// TestDialRetry pins the client-side backoff: a listener that comes up
// after the first attempt must still be reached within the retry window,
// and a zero window must fail in one attempt.
func TestDialRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	cli0, err := DialTimeout(addr, 0)
	if err != nil {
		t.Fatalf("one-shot dial to a live listener: %v", err)
	}
	cli0.Close()
	ln.Close()

	if _, err := DialTimeout(addr, 0); err == nil {
		t.Fatal("one-shot dial to a closed listener must fail")
	}

	// Bring the listener back mid-retry; Dial's backoff must find it.
	ready := make(chan net.Listener, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			ready <- nil
			return
		}
		ready <- ln
	}()
	cli, err := DialTimeout(addr, 5*time.Second)
	ln2 := <-ready
	if ln2 == nil {
		t.Skip("could not rebind the probe port")
	}
	defer ln2.Close()
	if err != nil {
		t.Fatalf("retrying dial: %v", err)
	}
	cli.Close()
}

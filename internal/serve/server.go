package serve

import (
	"crypto/subtle"
	"crypto/tls"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// Backend is what the wire server fronts: the single-session Service and
// the sharded Pool both satisfy it, so a daemon picks its serving engine
// with a flag and the wire protocol stays identical.
type Backend interface {
	// Lookup resolves a model name to its current registry entry.
	Lookup(name string) (*Entry, error)
	// List enumerates the registry.
	List() []Info
	// Width returns the flat feature-row width requests must carry.
	Width() int
	// PredictManyEntry serves samples pinned to a resolved entry.
	PredictManyEntry(entry *Entry, rows [][]float64, deadline time.Time) ([]float64, error)
	// Update absorbs appended samples into the named model (incremental
	// training against the live registry entry) and installs the result
	// as version+1.
	Update(name string, rows [][]float64, labels []float64, addTrees int) (*Entry, error)
	// Stats snapshots protocol + serving statistics.
	Stats() core.RunStats
	// Health probes liveness.
	Health() Health
	// Drain stops admission and flushes queued work.
	Drain()
	// Close drains and tears the serving sessions down.
	Close()
}

// Compile-time interface checks.
var (
	_ Backend = (*Service)(nil)
	_ Backend = (*Pool)(nil)
)

// WireConfig secures the serve wire.  The zero value is plaintext TCP
// with no authentication — fine on a loopback dev box, not across a WAN.
type WireConfig struct {
	// TLS, when set, wraps the listener (server) or connection (client)
	// in TLS; see transport.LoadServerTLS / transport.SelfSignedTLS for
	// building one.
	TLS *tls.Config
	// AuthToken, when non-empty, requires each connection's first frame
	// to be opAuth carrying the same shared token (constant-time
	// compared); everything else on the connection is refused until then.
	AuthToken string
}

// Server exposes a Backend over the wire protocol.  Each connection gets
// its own goroutine; predict requests from all connections coalesce in
// the backend's queues, which is the whole point of serving them from one
// long-lived daemon.
type Server struct {
	svc  Backend
	ln   net.Listener
	wire WireConfig

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	shutdown bool

	connWG   sync.WaitGroup
	stopOnce sync.Once
}

// NewServer listens on addr (e.g. "127.0.0.1:9100") with a plaintext,
// unauthenticated wire.
func NewServer(svc Backend, addr string) (*Server, error) {
	return NewServerWire(svc, addr, WireConfig{})
}

// NewServerWire is NewServer with transport security: TLS on the listener
// and/or a shared-token handshake per connection.
func NewServerWire(svc Backend, addr string, wire WireConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if wire.TLS != nil {
		ln = tls.NewListener(ln, wire.TLS)
	}
	return &Server{svc: svc, ln: ln, wire: wire, conns: make(map[net.Conn]struct{})}, nil
}

// Addr returns the bound listen address.
func (srv *Server) Addr() string { return srv.ln.Addr().String() }

// Serve accepts connections until Shutdown; it returns nil on a graceful
// shutdown.  The backend is drained and closed before Serve returns, so
// a daemon can simply `defer os.Exit` semantics on it.
func (srv *Server) Serve() error {
	failures := 0
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			srv.mu.Lock()
			stopped := srv.shutdown
			srv.mu.Unlock()
			// An Accept failure while the listener is open (fd
			// exhaustion, aborted handshake) must not tear down a
			// session whose keys cannot be rebuilt — keep accepting
			// with a capped backoff until Shutdown closes the listener.
			if !stopped && !errors.Is(err, net.ErrClosed) {
				if failures++; failures < 10 {
					time.Sleep(time.Duration(failures) * 100 * time.Millisecond)
				} else {
					time.Sleep(time.Second)
				}
				continue
			}
			srv.drain()
			return nil
		}
		failures = 0
		srv.mu.Lock()
		if srv.shutdown {
			srv.mu.Unlock()
			conn.Close()
			continue
		}
		srv.conns[conn] = struct{}{}
		srv.mu.Unlock()
		srv.connWG.Add(1)
		go srv.handle(conn)
	}
}

// Shutdown begins a graceful stop: no new connections, existing requests
// drain.  It returns immediately; Serve returns once the drain is done.
func (srv *Server) Shutdown() {
	srv.stopOnce.Do(func() {
		srv.mu.Lock()
		srv.shutdown = true
		srv.mu.Unlock()
		srv.ln.Close()
	})
}

// drain finishes a stop: queued samples flush first (so handlers blocked
// on PredictMany can still write their responses), then connections that
// linger idle past a grace period are force-closed to unblock their
// readFrame loops, and finally the backend is torn down.
func (srv *Server) drain() {
	srv.svc.Drain()
	done := make(chan struct{})
	go func() { srv.connWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		srv.mu.Lock()
		for conn := range srv.conns {
			conn.Close()
		}
		srv.mu.Unlock()
		<-done
	}
	srv.svc.Close()
}

func (srv *Server) handle(conn net.Conn) {
	defer srv.connWG.Done()
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, conn)
		srv.mu.Unlock()
		conn.Close()
	}()
	if srv.wire.AuthToken != "" && !srv.authenticate(conn) {
		return
	}
	for {
		op, body, err := readFrame(conn)
		if err != nil {
			return // disconnect or malformed framing
		}
		if !srv.serveOp(conn, op, body) {
			return
		}
	}
}

// authenticate gates a connection on the shared-token handshake: the
// first frame must be opAuth with the right token.  A bad token gets one
// opErr and the connection is dropped; the comparison is constant-time so
// the wire doesn't leak token prefixes.
func (srv *Server) authenticate(conn net.Conn) bool {
	// A handshake deadline keeps an idle unauthenticated socket from
	// pinning a goroutine forever.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	op, body, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil || op != opAuth {
		writeFrame(conn, opErr, "serve: authentication required")
		return false
	}
	var req authReq
	if json.Unmarshal(body, &req) != nil ||
		subtle.ConstantTimeCompare([]byte(req.Token), []byte(srv.wire.AuthToken)) != 1 {
		writeFrame(conn, opErr, "serve: bad auth token")
		return false
	}
	return writeFrame(conn, opOK, "ok") == nil
}

// serveOp answers one request frame; it reports whether the connection
// should keep being served.
func (srv *Server) serveOp(conn net.Conn, op byte, body []byte) bool {
	switch op {
	case opPredict:
		var req predictReq
		if err := json.Unmarshal(body, &req); err != nil {
			return writeFrame(conn, opErr, err.Error()) == nil
		}
		entry, err := srv.svc.Lookup(req.Model)
		if err != nil {
			return writeFrame(conn, opErr, err.Error()) == nil
		}
		var deadline time.Time
		if req.DeadlineMs > 0 {
			deadline = time.Now().Add(time.Duration(req.DeadlineMs) * time.Millisecond)
		}
		preds, err := srv.svc.PredictManyEntry(entry, req.Samples, deadline)
		if err != nil {
			var ue *UnavailableError
			if errors.As(err, &ue) {
				return writeFrame(conn, opUnavail, unavailResp{RetryAfterMs: ue.RetryAfter.Milliseconds()}) == nil
			}
			return writeFrame(conn, opErr, err.Error()) == nil
		}
		if preds == nil {
			preds = []float64{}
		}
		return writeFrame(conn, opOK, predictResp{Predictions: preds, Version: entry.Version}) == nil

	case opUpdate:
		var req updateReq
		if err := json.Unmarshal(body, &req); err != nil {
			return writeFrame(conn, opErr, err.Error()) == nil
		}
		entry, err := srv.svc.Update(req.Model, req.Samples, req.Labels, req.AddTrees)
		if err != nil {
			var ue *UnavailableError
			if errors.As(err, &ue) {
				return writeFrame(conn, opUnavail, unavailResp{RetryAfterMs: ue.RetryAfter.Milliseconds()}) == nil
			}
			return writeFrame(conn, opErr, err.Error()) == nil
		}
		return writeFrame(conn, opOK, updateResp{Version: entry.Version, Info: entry.Info()}) == nil

	case opModels:
		return writeFrame(conn, opOK, srv.svc.List()) == nil

	case opStats:
		return writeFrame(conn, opOK, srv.svc.Stats()) == nil

	case opHealth:
		return writeFrame(conn, opOK, srv.svc.Health()) == nil

	case opDrain:
		if err := writeFrame(conn, opOK, "draining"); err != nil {
			return false
		}
		go srv.Shutdown()
		return false

	default:
		return writeFrame(conn, opErr, "serve: unknown opcode") == nil
	}
}

package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Config tunes the serving queue.
type Config struct {
	// Window is the micro-batch coalescing window, measured from the
	// moment the dispatcher finds the queue non-empty: requests arriving
	// within it ride the same MPC round chain.  0 (the zero value)
	// flushes as soon as the dispatcher sees work — coalescing then
	// still happens for whatever queued while the previous chain was in
	// flight.  cmd/pivot-serve defaults its -window flag to 2ms.
	Window time.Duration
	// MaxBatch caps the samples coalesced into one round chain
	// (default 256).
	MaxBatch int
	// MaxQueue is the admission bound: samples queued beyond it are
	// rejected with ErrOverloaded (default 1024).
	MaxQueue int
	// DefaultDeadline applies to requests that carry none (0 = no
	// deadline).
	DefaultDeadline time.Duration
	// Rebuild, when set, is the session factory behind graceful
	// degradation: after a protocol failure kills the session, the
	// service fails in-flight work with UnavailableError, keeps refusing
	// new samples with the RetryAfter hint, and a background goroutine
	// calls Rebuild (retrying with a capped backoff) and swaps the fresh
	// session in, restoring service without a daemon restart.
	// Basic-protocol models in the registry survive the swap unchanged;
	// enhanced models hold ciphertexts bound to the dead session's key
	// material and stay servable only if the factory reuses it (e.g.
	// core.ResumeSession over the same CheckpointStore).  Nil disables
	// automatic restart: the service stays unavailable until closed.
	Rebuild func() (*core.Session, error)
	// RetryAfter is the back-off hint attached to UnavailableError while
	// the session is down (default 2s).
	RetryAfter time.Duration
	// Journal, when set, is called with each entry installed by an
	// incremental Update (version+1 installs), so a daemon can persist
	// absorbs the way it persists initial registrations.  Called outside
	// the serving locks; it must not call back into the engine.
	Journal func(*Entry)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 1024
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 2 * time.Second
	}
	return c
}

// ConfigError reports a nonsensical serving-configuration knob combination,
// rejected at construction (New / NewPool) instead of silently clamped deep
// in the dispatcher.  errors.As-able for callers that want the field.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("serve: invalid config: %s %s", e.Field, e.Reason)
}

// Validate checks the configuration after defaults are resolved: zero
// values select defaults and are always valid; explicit values must make
// sense together.
func (c Config) Validate() error {
	if c.Window < 0 {
		return &ConfigError{Field: "Window", Reason: "must not be negative"}
	}
	if c.MaxBatch < 0 {
		return &ConfigError{Field: "MaxBatch", Reason: "must not be negative (0 selects the default)"}
	}
	if c.MaxQueue < 0 {
		return &ConfigError{Field: "MaxQueue", Reason: "must not be negative (0 selects the default)"}
	}
	if c.DefaultDeadline < 0 {
		return &ConfigError{Field: "DefaultDeadline", Reason: "must not be negative"}
	}
	if c.RetryAfter < 0 {
		return &ConfigError{Field: "RetryAfter", Reason: "must not be negative"}
	}
	d := c.withDefaults()
	if d.MaxBatch > d.MaxQueue {
		return &ConfigError{Field: "MaxBatch",
			Reason: fmt.Sprintf("(%d) exceeds MaxQueue (%d): a full batch could never be admitted", d.MaxBatch, d.MaxQueue)}
	}
	return nil
}

// Serving errors.
var (
	// ErrOverloaded is returned when admission control refuses a sample.
	ErrOverloaded = fmt.Errorf("serve: queue full")
	// ErrDraining is returned for samples submitted after Drain/Close.
	ErrDraining = fmt.Errorf("serve: service draining")
	// ErrDeadline is returned when a sample's deadline passes before its
	// round chain ran.
	ErrDeadline = fmt.Errorf("serve: deadline exceeded")
	// ErrUnavailable matches (errors.Is) samples refused or failed
	// because the serving session died; the concrete error is an
	// *UnavailableError carrying the retry-after hint.
	ErrUnavailable = fmt.Errorf("serve: session unavailable")
)

// UnavailableError reports a dead serving session together with the
// configured client back-off hint.  errors.Is(err, ErrUnavailable)
// matches it.
type UnavailableError struct {
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("serve: session unavailable (retry after %v)", e.RetryAfter)
}

// Is makes errors.Is(err, ErrUnavailable) match.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

type result struct {
	pred float64
	err  error
}

// request is one queued sample.
type request struct {
	entry    *Entry
	row      []float64 // flat feature row, global column order
	enq      time.Time
	deadline time.Time // zero = none
	attempts int       // dispatches so far (pool: bumped when a lane dies mid-batch)
	res      chan result
}

// Service is the long-lived serving engine: it owns a live session and a
// model registry, and a single dispatcher goroutine that drains the
// request queue into coalesced batched round chains.  One goroutine is
// the whole concurrency story the MPC layer needs: protocol phases from
// the micro-batches are serialized by construction (and core.Session.Each
// additionally serializes against any other session user).
type Service struct {
	*Registry

	sess  *core.Session
	feats [][]int // per-client global feature indices
	width int     // total feature count
	cfg   Config

	mu          sync.Mutex
	queue       []*request
	stats       core.ServeStats
	draining    bool
	unavailable bool // session dead; rebuild (if configured) in flight
	// appends logs every absorbed batch (in order): a rebuilt session
	// starts from the factory's original data and replays these before
	// serving, so later absorbs see the same union.
	appends [][]*dataset.Partition

	wake chan struct{}
	done chan struct{}

	closeOnce sync.Once
}

// New builds a Service over a live session; parts are the session's
// vertical partitions (the per-client feature layout tells the service
// how to slice flat sample rows).  The Service takes ownership of the
// session: Close tears it down.
func New(sess *core.Session, parts []*dataset.Partition, cfg Config) (*Service, error) {
	if len(parts) != sess.M {
		return nil, fmt.Errorf("serve: %d partitions for %d clients", len(parts), sess.M)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Service{
		Registry: NewRegistry(),
		sess:     sess,
		cfg:      cfg.withDefaults(),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	s.feats = make([][]int, len(parts))
	for c, p := range parts {
		s.feats[c] = p.Features
		for _, f := range p.Features {
			if f+1 > s.width {
				s.width = f + 1
			}
		}
	}
	go s.dispatch()
	return s, nil
}

// Session exposes the underlying session (stats, advanced use).  A
// rebuild may swap it, so callers must not cache the pointer across a
// degradation event.
func (s *Service) Session() *core.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess
}

// Register installs mdl under name (see Registry.Register) and evicts
// the replaced model's cached secret-shared conversion from the session,
// so periodic retraining in a long-lived daemon doesn't grow the
// per-party SharedModel cache without bound.
func (s *Service) Register(name string, mdl core.Predictor) (*Entry, error) {
	old, _ := s.Registry.Lookup(name)
	e, err := s.Registry.Register(name, mdl)
	if err == nil && old != nil && old.Model != mdl {
		s.sess.EvictShared(old.Model)
	}
	return e, err
}

// Width returns the flat feature-row width requests must carry.
func (s *Service) Width() int { return s.width }

// Predict serves one sample (row in global column order) from the named
// model, waiting for its micro-batch to flush.  Safe for concurrent use;
// concurrent callers coalesce into shared round chains.
func (s *Service) Predict(model string, row []float64) (float64, error) {
	return s.PredictDeadline(model, row, time.Time{})
}

// PredictDeadline is Predict with an explicit deadline (zero = none):
// the sample is dropped with ErrDeadline if its chain hasn't started by
// then.
func (s *Service) PredictDeadline(model string, row []float64, deadline time.Time) (float64, error) {
	reqs, err := s.submit(model, [][]float64{row}, deadline)
	if err != nil {
		return 0, err
	}
	r := <-reqs[0].res
	return r.pred, r.err
}

// PredictMany serves a multi-sample request: the samples are enqueued
// individually (so they coalesce with every other caller's) and gathered.
func (s *Service) PredictMany(model string, rows [][]float64, deadline time.Time) ([]float64, error) {
	entry, err := s.Lookup(model)
	if err != nil {
		return nil, err
	}
	return s.PredictManyEntry(entry, rows, deadline)
}

// PredictManyEntry is PredictMany pinned to a resolved registry entry:
// the caller is guaranteed that exactly entry.Model serves the samples,
// even if the name is re-registered concurrently.
func (s *Service) PredictManyEntry(entry *Entry, rows [][]float64, deadline time.Time) ([]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	reqs, err := s.submitEntry(entry, rows, deadline)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(reqs))
	for i, rq := range reqs {
		r := <-rq.res
		if r.err != nil {
			return nil, r.err
		}
		out[i] = r.pred
	}
	return out, nil
}

// submit admits rows into the queue (all or nothing).
func (s *Service) submit(model string, rows [][]float64, deadline time.Time) ([]*request, error) {
	entry, err := s.Lookup(model)
	if err != nil {
		return nil, err
	}
	return s.submitEntry(entry, rows, deadline)
}

// submitEntry admits rows for a resolved registry entry, applying the
// configured DefaultDeadline to requests that carry none.
func (s *Service) submitEntry(entry *Entry, rows [][]float64, deadline time.Time) ([]*request, error) {
	for _, row := range rows {
		if len(row) != s.width {
			return nil, fmt.Errorf("serve: sample has %d features, federation has %d", len(row), s.width)
		}
	}
	now := time.Now()
	if deadline.IsZero() && s.cfg.DefaultDeadline > 0 {
		deadline = now.Add(s.cfg.DefaultDeadline)
	}
	reqs := make([]*request, len(rows))
	for i, row := range rows {
		reqs[i] = &request{entry: entry, row: row, enq: now, deadline: deadline, res: make(chan result, 1)}
	}

	s.mu.Lock()
	if s.draining {
		s.stats.Rejected += int64(len(rows))
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.unavailable {
		s.stats.Rejected += int64(len(rows))
		s.stats.Unavailable += int64(len(rows))
		s.mu.Unlock()
		return nil, &UnavailableError{RetryAfter: s.cfg.RetryAfter}
	}
	if len(s.queue)+len(rows) > s.cfg.MaxQueue {
		s.stats.Rejected += int64(len(rows))
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	s.queue = append(s.queue, reqs...)
	s.stats.Requests += int64(len(rows))
	s.mu.Unlock()

	select {
	case s.wake <- struct{}{}:
	default:
	}
	return reqs, nil
}

// dispatch is the single queue-draining goroutine.
func (s *Service) dispatch() {
	defer close(s.done)
	for {
		<-s.wake
		for s.flushOne() {
		}
		s.mu.Lock()
		stop := s.draining && len(s.queue) == 0
		s.mu.Unlock()
		if stop {
			return
		}
	}
}

// flushOne coalesces and runs one micro-batch; it reports whether the
// queue may hold more work.
func (s *Service) flushOne() bool {
	s.mu.Lock()
	if len(s.queue) == 0 {
		s.mu.Unlock()
		return false
	}
	draining := s.draining
	full := len(s.queue) >= s.cfg.MaxBatch
	s.mu.Unlock()

	// Micro-batch window: let concurrent requests pile in before the
	// chain starts.  Skipped when draining (shutdown flushes at once)
	// and when a full batch is already waiting (the sleep could only
	// add latency).
	if s.cfg.Window > 0 && !draining && !full {
		time.Sleep(s.cfg.Window)
	}

	// Take the oldest request's entry and every queued sample for the
	// same entry, preserving order, up to MaxBatch; drop expired ones.
	now := time.Now()
	var batch []*request
	s.mu.Lock()
	sess := s.sess // a rebuild may swap s.sess; this batch rides one session
	entry := s.queue[0].entry
	rest := s.queue[:0]
	for _, rq := range s.queue {
		switch {
		case !rq.deadline.IsZero() && now.After(rq.deadline):
			s.stats.Expired++
			rq.res <- result{err: ErrDeadline}
		case rq.entry == entry && len(batch) < s.cfg.MaxBatch:
			batch = append(batch, rq)
		default:
			rest = append(rest, rq)
		}
	}
	s.queue = rest
	more := len(s.queue) > 0
	s.mu.Unlock()
	if len(batch) == 0 {
		return more
	}

	// One shared round chain for the whole batch.
	X := make([][][]float64, len(s.feats))
	for c, feats := range s.feats {
		X[c] = make([][]float64, len(batch))
		for t, rq := range batch {
			local := make([]float64, len(feats))
			for j, f := range feats {
				local[j] = rq.row[f]
			}
			X[c][t] = local
		}
	}
	preds, rounds, err := core.PredictSamples(sess, entry.Model, X)

	// A protocol failure that killed the session (a crashed peer, an
	// aborted network) degrades the service: this batch and everything
	// queued behind it fail with the retry-after hint, and the rebuild
	// factory — when configured — restarts the session in the background.
	// Errors on a healthy session (e.g. a model the protocol cannot
	// evaluate) fail only their own batch.
	degraded := false
	if err != nil && !sess.Healthy() {
		err = s.degrade(sess)
		degraded = true
	}

	// A batch admitted under a replaced registry entry re-caches the old
	// model's secret-shared conversion; evict it again once served, so
	// retraining cycles racing in-flight requests don't leak conversions
	// for the session's lifetime.
	if cur, lookupErr := s.Lookup(entry.Name); lookupErr != nil || cur != entry {
		sess.EvictShared(entry.Model)
	}

	done := time.Now()
	s.mu.Lock()
	if degraded {
		s.stats.Unavailable += int64(len(batch))
	}
	s.stats.Batches++
	s.stats.Coalesced += int64(len(batch))
	if len(batch) > s.stats.MaxBatch {
		s.stats.MaxBatch = len(batch)
	}
	s.stats.BatchSizes.Observe(int64(len(batch)))
	s.stats.Rounds.Observe(rounds)
	for _, rq := range batch {
		s.stats.LatencyMs.Observe(done.Sub(rq.enq).Milliseconds())
	}
	s.mu.Unlock()

	for t, rq := range batch {
		if err != nil {
			rq.res <- result{err: err}
		} else {
			rq.res <- result{pred: preds[t]}
		}
	}
	return more
}

// degrade marks the service unavailable after sess died: everything
// queued fails with the retry-after hint (new submissions are refused
// the same way), and the Rebuild factory — when configured — is kicked
// off in the background.  It returns the error the failed batch should
// surface.  Idempotent per dead session: only the first caller for a
// given session drops the queue and starts a rebuild.
func (s *Service) degrade(sess *core.Session) error {
	uerr := &UnavailableError{RetryAfter: s.cfg.RetryAfter}
	s.mu.Lock()
	if s.unavailable || s.sess != sess {
		// Already degraded, or a rebuild already replaced this session.
		s.mu.Unlock()
		return uerr
	}
	s.unavailable = true
	dropped := s.queue
	s.queue = nil
	s.stats.Unavailable += int64(len(dropped))
	rebuild := s.cfg.Rebuild
	s.mu.Unlock()
	for _, rq := range dropped {
		rq.res <- result{err: uerr}
	}
	if rebuild != nil {
		go s.rebuild(sess, rebuild)
	}
	return uerr
}

// rebuild replaces a dead session: the corpse is torn down first (its
// endpoints and randomness pool release before the replacement's come
// up), then the factory is retried with a capped backoff until it yields
// a session or the service starts draining.
func (s *Service) rebuild(dead *core.Session, factory func() (*core.Session, error)) {
	dead.Close()
	delay := 50 * time.Millisecond
	for {
		s.mu.Lock()
		stop := s.draining
		s.mu.Unlock()
		if stop {
			return
		}
		ns, err := factory()
		if err == nil {
			// Replay every absorbed batch: the factory rebuilt from the
			// original data, and the registry's models were refined over
			// the union.  A failed replay restarts the factory loop.
			s.mu.Lock()
			appends := append([][]*dataset.Partition(nil), s.appends...)
			s.mu.Unlock()
			for _, ap := range appends {
				if aerr := core.AppendSamples(ns, ap); aerr != nil {
					ns.Close()
					ns = nil
					break
				}
			}
			if ns == nil {
				time.Sleep(delay)
				if delay *= 2; delay > time.Second {
					delay = time.Second
				}
				continue
			}
			s.mu.Lock()
			if s.draining {
				// Lost the race with Close: the service owns no live
				// session anymore, so tear the fresh one down here.
				s.mu.Unlock()
				ns.Close()
				return
			}
			s.sess = ns
			s.unavailable = false
			s.stats.Rebuilds++
			s.mu.Unlock()
			select {
			case s.wake <- struct{}{}:
			default:
			}
			return
		}
		time.Sleep(delay)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

// Health is the service's liveness snapshot (served over the wire as
// opHealth): Healthy is false while the session is dead (rebuild
// pending) or the service is draining, and RetryAfterMs then carries the
// back-off hint.
type Health struct {
	Healthy      bool  `json:"healthy"`
	Draining     bool  `json:"draining,omitempty"`
	QueueDepth   int   `json:"queue_depth"`
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// Pool-only: total and live lane counts (zero for a single-session
	// Service, whose one "lane" is implied by Healthy).
	Lanes        int `json:"lanes,omitempty"`
	LanesHealthy int `json:"lanes_healthy,omitempty"`
}

// Health probes the service.  The session's own liveness flag is folded
// in, so a session killed between batches reads unhealthy before any
// request trips over it.
func (s *Service) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Healthy:    !s.unavailable && !s.draining && s.sess.Healthy(),
		Draining:   s.draining,
		QueueDepth: len(s.queue),
	}
	if !h.Healthy && !s.draining {
		h.RetryAfterMs = s.cfg.RetryAfter.Milliseconds()
	}
	return h
}

// Stats returns the session's protocol statistics with the serving
// counters attached (RunStats.Serve).
func (s *Service) Stats() core.RunStats {
	s.mu.Lock()
	sess := s.sess
	s.mu.Unlock()
	rs := sess.Stats()
	s.mu.Lock()
	sv := s.stats
	sv.QueueDepth = len(s.queue)
	s.mu.Unlock()
	rs.Serve = &sv
	return rs
}

// Drain stops admitting new samples and blocks until every queued sample
// has been served.  Safe to call more than once and concurrently.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.done
}

// Close drains the queue and tears the underlying session down.
// Idempotent and safe under concurrent callers.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.Drain()
		s.mu.Lock()
		sess := s.sess
		s.mu.Unlock()
		sess.Close()
	})
}

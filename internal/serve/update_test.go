package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// updateFixture carves a synthetic classification set into a 16-row
// training base and a 4-row append batch (flat rows + labels, as the wire
// carries them).
func updateFixture(t *testing.T) (*dataset.Dataset, []*dataset.Partition, [][]float64, []float64) {
	t.Helper()
	ds := dataset.SyntheticClassification(20, 4, 2, 3.0, 9)
	base := &dataset.Dataset{X: ds.X[:16], Y: ds.Y[:16], Classes: ds.Classes, Names: ds.Names}
	parts, err := dataset.VerticalPartition(base, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds, parts, ds.X[16:], ds.Y[16:]
}

// TestServiceUpdate drives the single-session absorb path: validation,
// version bump, journal hook, stats, and served predictions equal to the
// offline pipeline on the refreshed model.
func TestServiceUpdate(t *testing.T) {
	ds, parts, newRows, newLabels := updateFixture(t)
	sess, err := core.NewSession(parts, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var mu sync.Mutex
	var journaled []*Entry
	svc, err := New(sess, parts, Config{
		Window: 5 * time.Millisecond, MaxBatch: 8,
		Journal: func(e *Entry) { mu.Lock(); journaled = append(journaled, e); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	mdl, err := core.Train(sess, core.TrainSpec{Model: core.KindDT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("dt", mdl); err != nil {
		t.Fatal(err)
	}

	if _, err := svc.Update("nope", newRows, newLabels, 0); err == nil {
		t.Fatal("unknown model must refuse the update")
	}
	if _, err := svc.Update("dt", newRows, newLabels[:2], 0); err == nil {
		t.Fatal("label/sample count mismatch must refuse the update")
	}
	if _, err := svc.Update("dt", nil, nil, 0); err == nil {
		t.Fatal("empty append must refuse the update")
	}

	ne, err := svc.Update("dt", newRows, newLabels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ne.Version != 2 {
		t.Fatalf("absorb installed version %d, want 2", ne.Version)
	}
	upd, ok := ne.Model.(*core.Model)
	if !ok {
		t.Fatalf("absorb returned %T, want *core.Model", ne.Model)
	}
	orig := mdl.(*core.Model)
	if len(upd.Nodes) != len(orig.Nodes) {
		t.Fatalf("DT absorb changed topology: %d nodes, had %d", len(upd.Nodes), len(orig.Nodes))
	}

	// Served predictions on the refreshed model must match the offline
	// batched pipeline bit for bit.
	queryParts, err := dataset.VerticalPartition(ds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.PredictAll(sess, ne.Model, queryParts)
	if err != nil {
		t.Fatal(err)
	}
	rows := flatRows(queryParts, svc.Width())
	for i, row := range rows {
		got, err := svc.Predict("dt", row)
		if err != nil {
			t.Fatal(err)
		}
		if got != oracle[i] {
			t.Fatalf("sample %d: served %v, oracle %v", i, got, oracle[i])
		}
	}

	// A second absorb stacks on the first: the session's partitions grew,
	// so the append log and indicator extensions must stay consistent.
	ne2, err := svc.Update("dt", newRows, newLabels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ne2.Version != 3 {
		t.Fatalf("second absorb installed version %d, want 3", ne2.Version)
	}

	st := svc.Stats()
	if st.Serve == nil || st.Serve.Updates != 2 {
		t.Fatalf("stats counted %+v updates, want 2", st.Serve)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(journaled) != 2 || journaled[0].Version != 2 || journaled[1].Version != 3 {
		t.Fatalf("journal saw %d installs", len(journaled))
	}

	svc.Drain()
	if _, err := svc.Update("dt", newRows, newLabels, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain update returned %v", err)
	}
}

// TestPoolUpdate routes an absorb through a sharded pool: the chain runs
// on one reserved lane, the other lanes' partitions sync afterwards, and a
// second absorb (which may land on any lane) proves the sync held.
func TestPoolUpdate(t *testing.T) {
	ds, parts, newRows, newLabels := updateFixture(t)
	factory := func(lane int) (*core.Session, error) {
		c := fixtureConfig()
		c.Seed += int64(lane)
		return core.NewSession(parts, c)
	}
	pool, err := NewPool(parts, PoolConfig{
		Config: Config{Window: 2 * time.Millisecond, MaxBatch: 4},
		Lanes:  2, LaneFactory: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	mdl, err := core.Train(pool.LaneSession(0), core.TrainSpec{Model: core.KindDT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Register("dt", mdl); err != nil {
		t.Fatal(err)
	}

	ne, err := pool.Update("dt", newRows, newLabels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ne.Version != 2 {
		t.Fatalf("pool absorb installed version %d, want 2", ne.Version)
	}
	ne2, err := pool.Update("dt", newRows, newLabels, 0)
	if err != nil {
		t.Fatalf("second pool absorb (lane sync check): %v", err)
	}
	if ne2.Version != 3 {
		t.Fatalf("second pool absorb installed version %d, want 3", ne2.Version)
	}

	// Both lanes keep serving the refreshed model, bit-identical to the
	// offline pipeline.
	queryParts, err := dataset.VerticalPartition(ds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.PredictAll(pool.LaneSession(0), ne2.Model, queryParts)
	if err != nil {
		t.Fatal(err)
	}
	rows := flatRows(queryParts, pool.Width())
	got := make([]float64, len(rows))
	errs := make([]error, len(rows))
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = pool.Predict("dt", rows[i])
		}(i)
	}
	wg.Wait()
	for i := range rows {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i] != oracle[i] {
			t.Fatalf("post-absorb sample %d: served %v, oracle %v", i, got[i], oracle[i])
		}
	}
	if st := pool.Stats(); st.Serve == nil || st.Serve.Updates != 2 {
		t.Fatalf("pool stats counted %+v updates, want 2", st.Serve)
	}

	pool.Drain()
	if _, err := pool.Update("dt", newRows, newLabels, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain pool update returned %v", err)
	}
}

// TestServeUpdateNoTornReads hammers a daemon with concurrent predictions
// while an absorb is in flight: every response must be answered by exactly
// version N or N+1 — the whole response on one version's model, never a
// mix — and versions observed on one connection never go backwards.
// Nightly (race suite) only.
func TestServeUpdateNoTornReads(t *testing.T) {
	if testing.Short() {
		t.Skip("nightly: concurrent update/predict consistency")
	}
	_, parts, newRows, newLabels := updateFixture(t)
	sess, err := core.NewSession(parts, fixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	svc, err := New(sess, parts, Config{Window: 2 * time.Millisecond, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := core.Train(sess, core.TrainSpec{Model: core.KindDT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("dt", mdl); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	rows := flatRows(parts, svc.Width())
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	oracleV1, version, err := cli.PredictVersioned("dt", rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("pre-absorb version %d", version)
	}

	type obs struct {
		version int
		preds   []float64
	}
	const probers = 4
	observed := make([][]obs, probers)
	perr := make([]error, probers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < probers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pc, err := Dial(srv.Addr())
			if err != nil {
				perr[g] = err
				return
			}
			defer pc.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				preds, v, err := pc.PredictVersioned("dt", rows, 0)
				if err != nil {
					perr[g] = err
					return
				}
				observed[g] = append(observed[g], obs{version: v, preds: preds})
			}
		}(g)
	}

	v2, err := cli.Update("dt", newRows, newLabels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("absorb installed version %d, want 2", v2)
	}
	// Let the probers observe the installed version before stopping.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	for g, err := range perr {
		if err != nil {
			t.Fatalf("prober %d: %v", g, err)
		}
	}

	oracleV2, version, err := cli.PredictVersioned("dt", rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("post-absorb version %d", version)
	}

	oracles := map[int][]float64{1: oracleV1, 2: oracleV2}
	total := 0
	for g := range observed {
		last := 0
		for i, o := range observed[g] {
			total++
			if o.version < last {
				t.Fatalf("prober %d response %d: version went backwards %d -> %d", g, i, last, o.version)
			}
			last = o.version
			oracle, ok := oracles[o.version]
			if !ok {
				t.Fatalf("prober %d response %d: impossible version %d", g, i, o.version)
			}
			for s := range o.preds {
				if o.preds[s] != oracle[s] {
					t.Fatalf("prober %d response %d: torn read — version %d sample %d served %v, that version's model says %v",
						g, i, o.version, s, o.preds[s], oracle[s])
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("probers observed no responses")
	}

	if err := cli.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// poolFixture builds an S-lane pool over a small federation with a
// trained DT registered as "dt".  The returned factory is shared with the
// pool (it is also the rebuild path) and honors gate: while gate is set,
// rebuilds fail — letting tests hold a lane down deterministically.
func poolFixture(t *testing.T, lanes int, cfg Config, gate *atomic.Bool) (*Pool, []float64, [][]float64) {
	t.Helper()
	ds := dataset.SyntheticClassification(12, 4, 2, 3.0, 9)
	parts, err := dataset.VerticalPartition(ds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(lane int) (*core.Session, error) {
		if gate != nil && gate.Load() {
			return nil, errors.New("rebuild gated by test")
		}
		c := fixtureConfig()
		c.Seed += int64(lane)
		return core.NewSession(parts, c)
	}
	pool, err := NewPool(parts, PoolConfig{Config: cfg, Lanes: lanes, LaneFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	sess := pool.LaneSession(0)
	mdl, err := core.Train(sess, core.TrainSpec{Model: core.KindDT})
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	if _, err := pool.Register("dt", mdl); err != nil {
		pool.Close()
		t.Fatal(err)
	}
	oracle, err := core.PredictAll(sess, mdl, parts)
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return pool, oracle, flatRows(parts, pool.Width())
}

// TestPoolServes drives the pool end to end: concurrent requests spread
// over both lanes and every prediction is bit-identical to the offline
// oracle, with the per-lane stats accounting for all of it.
func TestPoolServes(t *testing.T) {
	pool, oracle, rows := poolFixture(t, 2, Config{Window: 5 * time.Millisecond, MaxBatch: 4}, nil)
	defer pool.Close()

	for round := 0; round < 2; round++ {
		got := make([]float64, len(rows))
		errs := make([]error, len(rows))
		var wg sync.WaitGroup
		for i := range rows {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i], errs[i] = pool.Predict("dt", rows[i])
			}(i)
		}
		wg.Wait()
		for i := range rows {
			if errs[i] != nil {
				t.Fatalf("round %d sample %d: %v", round, i, errs[i])
			}
			if got[i] != oracle[i] {
				t.Fatalf("round %d sample %d: served %v, oracle %v", round, i, got[i], oracle[i])
			}
		}
	}

	st := pool.Stats()
	if st.Serve == nil || len(st.Serve.Lanes) != 2 {
		t.Fatalf("pool stats missing lanes: %+v", st.Serve)
	}
	if st.Serve.LanesHealthy != 2 {
		t.Fatalf("healthy lanes = %d", st.Serve.LanesHealthy)
	}
	var samples int64
	busyLanes := 0
	for _, ls := range st.Serve.Lanes {
		samples += ls.Samples
		if ls.Batches > 0 {
			busyLanes++
		}
	}
	if samples != int64(2*len(rows)) || st.Serve.Coalesced != samples {
		t.Fatalf("lane samples %d, coalesced %d, want %d", samples, st.Serve.Coalesced, 2*len(rows))
	}
	// With MaxBatch 4 and 12 concurrent samples per round, the
	// least-loaded dispatch must have exercised both lanes.
	if busyLanes != 2 {
		t.Fatalf("only %d lanes served batches", busyLanes)
	}
	if h := pool.Health(); !h.Healthy || h.Lanes != 2 || h.LanesHealthy != 2 {
		t.Fatalf("health: %+v", h)
	}
}

// TestPoolFailover is the chaos round trip: kill one lane (requests fail
// over and none are lost), kill the last lane (requests fail with the
// retry-after hint and admission refuses), release the rebuild gate (the
// pool heals to full strength and serves the oracle again).
func TestPoolFailover(t *testing.T) {
	var gate atomic.Bool
	pool, oracle, rows := poolFixture(t, 2, Config{Window: 2 * time.Millisecond, MaxBatch: 4, RetryAfter: 200 * time.Millisecond}, &gate)
	defer pool.Close()

	// Warm one lane so the other is strictly least-loaded, then kill the
	// cold one: the next batch is routed straight at the corpse and must
	// fail over without the caller noticing.
	if got, err := pool.Predict("dt", rows[0]); err != nil || got != oracle[0] {
		t.Fatalf("warmup: %v, %v", got, err)
	}
	gate.Store(true) // rebuilds stay down until released
	cold := 0
	for _, ls := range pool.Stats().Serve.Lanes {
		if ls.Samples == 0 {
			cold = ls.Lane
		}
	}
	pool.LaneSession(cold).Close()

	got := make([]float64, len(rows))
	errs := make([]error, len(rows))
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = pool.Predict("dt", rows[i])
		}(i)
	}
	wg.Wait()
	for i := range rows {
		if errs[i] != nil {
			t.Fatalf("failover sample %d: %v", i, errs[i])
		}
		if got[i] != oracle[i] {
			t.Fatalf("failover sample %d: served %v, oracle %v", i, got[i], oracle[i])
		}
	}
	st := pool.Stats()
	if st.Serve.Requeued == 0 {
		t.Fatalf("no batch migrated off the dead lane: %+v", st.Serve)
	}
	if st.Serve.LanesHealthy != 1 {
		t.Fatalf("healthy lanes after kill = %d", st.Serve.LanesHealthy)
	}
	if h := pool.Health(); !h.Healthy || h.LanesHealthy != 1 {
		t.Fatalf("health at S-1: %+v", h)
	}

	// Kill the survivor: the tripping request gets the hint, and later
	// submissions are refused at admission the same way.
	for _, ls := range pool.Stats().Serve.Lanes {
		if ls.Healthy {
			pool.LaneSession(ls.Lane).Close()
		}
	}
	_, err := pool.Predict("dt", rows[0])
	var ue *UnavailableError
	if !errors.Is(err, ErrUnavailable) || !errors.As(err, &ue) || ue.RetryAfter != 200*time.Millisecond {
		t.Fatalf("predict during outage = %v", err)
	}
	if _, err := pool.Predict("dt", rows[0]); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("admission during outage = %v", err)
	}
	if h := pool.Health(); h.Healthy || h.LanesHealthy != 0 || h.RetryAfterMs != 200 {
		t.Fatalf("health during outage: %+v", h)
	}

	// Release the gate: background rebuilds must restore both lanes.
	gate.Store(false)
	deadline := time.Now().Add(30 * time.Second)
	for pool.Health().LanesHealthy != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("pool did not heal: %+v", pool.Health())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := range rows {
		v, err := pool.Predict("dt", rows[i])
		if err != nil || v != oracle[i] {
			t.Fatalf("post-heal sample %d: %v, %v (want %v)", i, v, err, oracle[i])
		}
	}
	if st := pool.Stats(); st.Serve.Rebuilds != 2 {
		t.Fatalf("rebuilds = %d, want 2", st.Serve.Rebuilds)
	}
}

// TestPoolWRRFairness unit-tests the credit scheduler: with weights 2:1
// and both model queues backlogged, dispatch opportunities split 2:1 and
// rotation never starves the light queue.
func TestPoolWRRFairness(t *testing.T) {
	p := &Pool{
		cfg:     Config{}.withDefaults(),
		weights: map[string]int{"hot": 2, "cold": 1},
		queues:  make(map[string]*modelQueue),
	}
	backlog := func(name string, n int) {
		q := p.queueLocked(name)
		for i := 0; i < n; i++ {
			// attempts > 0 marks the head dispatchable regardless of window.
			q.reqs = append(q.reqs, &request{attempts: 1})
		}
	}
	backlog("hot", 100)
	backlog("cold", 100)

	wins := map[string]int{}
	now := time.Now()
	for i := 0; i < 30; i++ {
		q := p.nextQueueLocked(now)
		if q == nil {
			t.Fatalf("draw %d: no dispatchable queue", i)
		}
		wins[q.name]++
	}
	if wins["hot"] != 20 || wins["cold"] != 10 {
		t.Fatalf("weighted round-robin split %v, want hot=20 cold=10", wins)
	}

	// Starvation check: a queue must win within weight-sum draws of
	// becoming backlogged even when another queue stays saturated.
	p2 := &Pool{cfg: Config{}.withDefaults(), weights: map[string]int{"hot": 8}, queues: make(map[string]*modelQueue)}
	p2.queueLocked("hot")
	p2.queues["hot"].reqs = []*request{{attempts: 1}, {attempts: 1}, {attempts: 1}}
	for i := 0; i < 5; i++ {
		p2.nextQueueLocked(now)
	}
	p2.queueLocked("late")
	p2.queues["late"].reqs = []*request{{attempts: 1}}
	for draw := 1; ; draw++ {
		if draw > 9 {
			t.Fatal("late queue starved past one full WRR cycle")
		}
		if p2.nextQueueLocked(now).name == "late" {
			break
		}
	}
}

// TestConfigValidate pins the typed construction-time rejection of
// nonsensical knob combinations (no silent clamping in the dispatcher).
func TestConfigValidate(t *testing.T) {
	bad := []struct {
		cfg   Config
		field string
	}{
		{Config{Window: -time.Second}, "Window"},
		{Config{MaxBatch: -1}, "MaxBatch"},
		{Config{MaxQueue: -8}, "MaxQueue"},
		{Config{DefaultDeadline: -time.Millisecond}, "DefaultDeadline"},
		{Config{RetryAfter: -time.Second}, "RetryAfter"},
		{Config{MaxBatch: 64, MaxQueue: 2}, "MaxBatch"},
		{Config{MaxBatch: 4096}, "MaxBatch"}, // exceeds the MaxQueue default
	}
	for _, tc := range bad {
		err := tc.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Fatalf("Validate(%+v) = %v, want ConfigError on %s", tc.cfg, err, tc.field)
		}
	}
	good := []Config{
		{},
		{Window: 2 * time.Millisecond, MaxBatch: 8, MaxQueue: 8},
		{MaxBatch: 256}, // equals the MaxQueue default? no: 256 <= 1024
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}

	// Pool-only knobs.
	factory := func(int) (*core.Session, error) { return nil, nil }
	for _, tc := range []struct {
		cfg   PoolConfig
		field string
	}{
		{PoolConfig{Lanes: 0, LaneFactory: factory}, "Lanes"},
		{PoolConfig{Lanes: 2}, "LaneFactory"},
		{PoolConfig{Lanes: 2, LaneFactory: factory, Weights: map[string]int{"m": 0}}, "Weights"},
		{PoolConfig{Lanes: 2, LaneFactory: factory, Config: Config{Window: -1}}, "Window"},
	} {
		err := tc.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Fatalf("PoolConfig.Validate(%+v) = %v, want ConfigError on %s", tc.cfg, err, tc.field)
		}
	}

	// New must surface the same typed error.
	if _, err := NewPool(nil, PoolConfig{Lanes: 1, LaneFactory: factory, Config: Config{MaxBatch: 10, MaxQueue: 5}}); err == nil {
		t.Fatal("NewPool accepted MaxBatch > MaxQueue")
	}
}

// TestRegistryReplaceUnderTraffic races Register/Replace against live
// prediction traffic on a 2-lane pool: every request must finish on the
// exact model version it was admitted with (the entry pin), with zero
// errors.  Run under the nightly full -race suite.
func TestRegistryReplaceUnderTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("registry race soak needs full MPC traffic; run without -short")
	}
	pool, _, rows := poolFixture(t, 2, Config{Window: time.Millisecond, MaxBatch: 8}, nil)
	defer pool.Close()

	sess := pool.LaneSession(0)
	// Two models with different predictions under the same name.
	mdlA, err := pool.Lookup("dt")
	if err != nil {
		t.Fatal(err)
	}
	rf, err := core.Train(sess, core.TrainSpec{Model: core.KindRF})
	if err != nil {
		t.Fatal(err)
	}
	parts2, err := dataset.VerticalPartition(dataset.SyntheticClassification(12, 4, 2, 3.0, 9), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracles := map[core.Predictor][]float64{}
	for _, m := range []core.Predictor{mdlA.Model, rf} {
		o, err := core.PredictAll(sess, m, parts2)
		if err != nil {
			t.Fatal(err)
		}
		oracles[m] = o
	}

	stop := make(chan struct{})
	var replaceWG sync.WaitGroup
	replaceWG.Add(1)
	go func() {
		defer replaceWG.Done()
		models := []core.Predictor{rf, mdlA.Model}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := pool.Register("dt", models[i%2]); err != nil {
				t.Errorf("replace %d: %v", i, err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	var trafficWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		trafficWG.Add(1)
		go func(w int) {
			defer trafficWG.Done()
			for iter := 0; iter < 6; iter++ {
				entry, err := pool.Lookup("dt")
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				preds, err := pool.PredictManyEntry(entry, rows, time.Time{})
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, iter, err)
					return
				}
				want := oracles[entry.Model]
				for i := range preds {
					if preds[i] != want[i] {
						t.Errorf("worker %d iter %d sample %d: got %v want %v (version %d pin broken)",
							w, iter, i, preds[i], want[i], entry.Version)
						return
					}
				}
			}
		}(w)
	}
	trafficWG.Wait()
	close(stop)
	replaceWG.Wait()
}

package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Incremental serving updates: an `update` wire op trains against the live
// registry entry (core.Update: leaf refinement for DT/RF, warm-start
// boosting rounds for GBDT) and installs the result as version+1.  Entries
// are immutable, so the swap is naturally torn-read free — every in-flight
// prediction batch is pinned to the entry it was admitted under and
// answers at exactly version N or N+1, never a mix.  On a Pool the update
// chain runs on one reserved lane while the others keep serving; their
// training data is then synced with a purely local AppendSamples phase so
// a later absorb sees the same union everywhere.

// appendPartitions slices flat sample rows (global column order) into
// per-client partitions for core.Update.  Labels ride every partition —
// only the super client reads them, and the serving layer doesn't need to
// know which client that is.
func appendPartitions(feats [][]int, width int, rows [][]float64, labels []float64) ([]*dataset.Partition, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("serve: update carries no samples")
	}
	if len(labels) != len(rows) {
		return nil, fmt.Errorf("serve: update has %d samples but %d labels", len(rows), len(labels))
	}
	for _, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("serve: sample has %d features, federation has %d", len(row), width)
		}
	}
	parts := make([]*dataset.Partition, len(feats))
	for c, fs := range feats {
		part := &dataset.Partition{
			Client:   c,
			Features: fs,
			N:        len(rows),
			X:        make([][]float64, len(rows)),
			Y:        append([]float64(nil), labels...),
		}
		for t, row := range rows {
			local := make([]float64, len(fs))
			for j, f := range fs {
				local[j] = row[f]
			}
			part.X[t] = local
		}
		parts[c] = part
	}
	return parts, nil
}

// Update absorbs appended samples (flat rows in global column order, one
// label each) into the named model on the serving session and installs the
// result as version+1.  Predictions admitted before the install keep
// serving the prior version; the appended rows join the session's training
// partitions for later absorbs.  addTrees sets the extra boosting rounds
// for GBDT models (<= 0 selects 1) and is ignored for DT/RF.
func (s *Service) Update(name string, rows [][]float64, labels []float64, addTrees int) (*Entry, error) {
	entry, err := s.Lookup(name)
	if err != nil {
		return nil, err
	}
	parts, err := appendPartitions(s.feats, s.width, rows, labels)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.unavailable {
		retry := s.cfg.RetryAfter
		s.mu.Unlock()
		return nil, &UnavailableError{RetryAfter: retry}
	}
	sess := s.sess
	s.mu.Unlock()

	mdl, err := core.Update(sess, core.UpdateSpec{Model: entry.Model, Append: parts, AddTrees: addTrees})
	if err != nil {
		if !sess.Healthy() {
			return nil, s.degrade(sess)
		}
		return nil, err
	}

	s.mu.Lock()
	s.stats.Updates++
	// Remember the batch: a rebuilt session comes from the factory with
	// the original data and must replay every absorb before serving.
	s.appends = append(s.appends, parts)
	s.mu.Unlock()

	ne, err := s.Register(name, mdl)
	if err == nil && s.cfg.Journal != nil {
		s.cfg.Journal(ne)
	}
	return ne, err
}

// Update is the pool's absorb: the update chain is routed to one reserved
// healthy idle lane (waiting for one to free up if need be) while the
// other lanes keep serving; on success every other live lane's partitions
// are synced with the same appended rows (a purely local phase) and the
// refreshed model installs as version+1 pool-wide.
func (p *Pool) Update(name string, rows [][]float64, labels []float64, addTrees int) (*Entry, error) {
	entry, err := p.Lookup(name)
	if err != nil {
		return nil, err
	}
	parts, err := appendPartitions(p.feats, p.width, rows, labels)
	if err != nil {
		return nil, err
	}

	ln, err := p.reserveLane()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	sess := ln.sess
	p.mu.Unlock()

	mdl, uerr := core.Update(sess, core.UpdateSpec{Model: entry.Model, Append: parts, AddTrees: addTrees})

	p.mu.Lock()
	ln.busy = false
	p.wakeLaneWaitersLocked()
	if uerr != nil && !sess.Healthy() {
		// Spawning a rebuild while Drain may already be waiting on runWG
		// would race the WaitGroup; a draining pool closes the corpse in
		// Close anyway.
		rebuild := ln.healthy && !p.draining
		ln.healthy = false
		retry := p.cfg.RetryAfter
		p.mu.Unlock()
		if rebuild {
			p.runWG.Add(1)
			go p.rebuildLane(ln)
		}
		p.kick()
		return nil, &UnavailableError{RetryAfter: retry}
	}
	if uerr != nil {
		p.mu.Unlock()
		p.kick()
		return nil, uerr
	}
	p.stats.Updates++
	p.appends = append(p.appends, parts)
	others := make([]*lane, 0, len(p.lanes)-1)
	for _, o := range p.lanes {
		if o != ln && o.healthy {
			others = append(others, o)
		}
	}
	sessions := make([]*core.Session, len(others))
	for i, o := range others {
		sessions[i] = o.sess
	}
	p.mu.Unlock()
	p.kick()

	// Sync the serving lanes' partitions (no protocol traffic; serializes
	// with any in-flight batch at phase granularity).  A lane that fails
	// the sync is treated like a lane death: rebuild replays the log.
	for i, o := range others {
		if aerr := core.AppendSamples(sessions[i], parts); aerr != nil {
			p.mu.Lock()
			rebuild := o.healthy && o.sess == sessions[i] && !p.draining
			if o.sess == sessions[i] {
				o.healthy = false
			}
			p.mu.Unlock()
			if rebuild {
				p.runWG.Add(1)
				go p.rebuildLane(o)
			}
		}
	}

	ne, err := p.Register(name, mdl)
	if err == nil && p.cfg.Journal != nil {
		p.cfg.Journal(ne)
	}
	return ne, err
}

// reserveLane claims a healthy idle lane for an update chain, marking it
// busy so the scheduler routes micro-batches around it.  It waits for one
// to free up (updates and predictions contend for the same lanes) and
// gives up only when the pool drains or loses every lane.
func (p *Pool) reserveLane() (*lane, error) {
	for {
		p.mu.Lock()
		if p.draining {
			p.mu.Unlock()
			return nil, ErrDraining
		}
		if p.healthyLanesLocked() == 0 {
			retry := p.cfg.RetryAfter
			p.mu.Unlock()
			return nil, &UnavailableError{RetryAfter: retry}
		}
		if ln := p.idleLaneLocked(); ln != nil {
			ln.busy = true
			p.mu.Unlock()
			return ln, nil
		}
		waiter := make(chan struct{})
		p.laneWaiters = append(p.laneWaiters, waiter)
		p.mu.Unlock()
		<-waiter
	}
}

// wakeLaneWaiters releases every goroutine parked in reserveLane; called
// (with p.mu held) whenever a lane may have become available.
func (p *Pool) wakeLaneWaitersLocked() {
	for _, w := range p.laneWaiters {
		close(w)
	}
	p.laneWaiters = nil
}

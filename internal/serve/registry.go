// Package serve is the prediction-serving layer: a long-lived Service
// that owns a live core.Session plus a registry of named, versioned
// Predictors, coalesces concurrent single-sample requests into shared
// batched MPC round chains (micro-batching), applies admission control,
// and exposes the whole thing over a small length-prefixed TCP wire
// protocol (Server / Dial) for the pivot-serve daemon.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// Entry is one registry slot: a named, versioned Predictor.  Entries are
// immutable once registered; re-registering a name creates a new Entry
// with a bumped Version, and in-flight requests keep serving the Entry
// they were admitted under.
type Entry struct {
	Name    string
	Version int
	Model   core.Predictor
}

// Info is the wire-friendly view of an Entry.
type Info struct {
	Name    string         `json:"name"`
	Version int            `json:"version"`
	Kind    core.ModelKind `json:"kind"`
	Classes int            `json:"classes"`
}

// Info returns the entry's wire-friendly view.
func (e *Entry) Info() Info {
	return Info{Name: e.Name, Version: e.Version, Kind: e.Model.Kind(), Classes: e.Model.NumClasses()}
}

// Registry maps model names to their current Entry.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Register installs mdl under name and returns its Entry; registering an
// existing name replaces the served model and bumps the version.
func (r *Registry) Register(name string, mdl core.Predictor) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must not be empty")
	}
	if mdl == nil {
		return nil, fmt.Errorf("serve: model %q is nil", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := 1
	if old, ok := r.entries[name]; ok {
		v = old.Version + 1
	}
	e := &Entry{Name: name, Version: v, Model: mdl}
	r.entries[name] = e
	return e, nil
}

// restore installs a journaled entry with its persisted version (registry
// persistence, see Store): unlike Register it does not renumber, so a
// daemon restart serves the same versions it went down with.  A later
// Register of the same name bumps from the restored version.
func (r *Registry) restore(e *Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.entries[e.Name]; ok && old.Version >= e.Version {
		return // an in-memory registration already superseded the journal
	}
	r.entries[e.Name] = e
}

// Lookup returns the current entry for name.
func (r *Registry) Lookup(name string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("serve: no model registered as %q", name)
	}
	return e, nil
}

// List returns every entry's info, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

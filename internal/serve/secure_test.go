package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// fakeBackend is a sessionless Backend for wire-layer tests (TLS, auth,
// retry hints): prediction answers are canned, and unavailLeft counts how
// many predict calls fail with the retry-after hint before service
// "recovers" — a deterministic degraded-then-rebuilt daemon.
type fakeBackend struct {
	mu          sync.Mutex
	entry       *Entry
	unavailLeft int
	hint        time.Duration
	calls       int
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{entry: &Entry{Name: "m", Version: 1, Model: tinyTree(0.5, 0, 1)}}
}

func (f *fakeBackend) Lookup(name string) (*Entry, error) {
	if name != f.entry.Name {
		return nil, errors.New("serve: no model registered as " + name)
	}
	return f.entry, nil
}
func (f *fakeBackend) List() []Info { return []Info{f.entry.Info()} }
func (f *fakeBackend) Width() int   { return 2 }
func (f *fakeBackend) PredictManyEntry(e *Entry, rows [][]float64, _ time.Time) ([]float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.unavailLeft > 0 {
		f.unavailLeft--
		return nil, &UnavailableError{RetryAfter: f.hint}
	}
	out := make([]float64, len(rows))
	for i := range out {
		out[i] = 7
	}
	return out, nil
}
func (f *fakeBackend) Update(name string, rows [][]float64, labels []float64, addTrees int) (*Entry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.entry = &Entry{Name: f.entry.Name, Version: f.entry.Version + 1, Model: f.entry.Model}
	return f.entry, nil
}
func (f *fakeBackend) Stats() core.RunStats { return core.RunStats{} }
func (f *fakeBackend) Health() Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Health{Healthy: f.unavailLeft == 0, RetryAfterMs: f.hint.Milliseconds()}
}
func (f *fakeBackend) Drain() {}
func (f *fakeBackend) Close() {}

// TestWireTLSAuth pins the secured wire: a client with the matched TLS
// roots and token is served; a bad token, a missing token, and a
// plaintext client are all refused.
func TestWireTLSAuth(t *testing.T) {
	srvTLS, cliTLS, err := transport.SelfSignedTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWire(newFakeBackend(), "127.0.0.1:0", WireConfig{TLS: srvTLS, AuthToken: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Shutdown()

	cli, err := DialOpts(srv.Addr(), DialOptions{TLS: cliTLS, AuthToken: "s3cret", Timeout: -1})
	if err != nil {
		t.Fatalf("authorized dial: %v", err)
	}
	defer cli.Close()
	if preds, err := cli.Predict("m", [][]float64{{1, 2}}); err != nil || preds[0] != 7 {
		t.Fatalf("authorized predict = %v, %v", preds, err)
	}
	if h, err := cli.Health(); err != nil || !h.Healthy {
		t.Fatalf("authorized health = %+v, %v", h, err)
	}

	if _, err := DialOpts(srv.Addr(), DialOptions{TLS: cliTLS, AuthToken: "wrong", Timeout: -1}); err == nil ||
		!strings.Contains(err.Error(), "auth") {
		t.Fatalf("bad token dial = %v, want auth rejection", err)
	}

	// No token: the TLS connection comes up, but the first real request
	// is refused and the connection dropped.
	bare, err := DialOpts(srv.Addr(), DialOptions{TLS: cliTLS, Timeout: -1})
	if err != nil {
		t.Fatalf("tokenless dial: %v", err)
	}
	defer bare.Close()
	if _, err := bare.Models(); err == nil {
		t.Fatal("tokenless request must be refused")
	}

	// Plaintext client against the TLS listener: the handshake fails.
	if plain, err := DialOpts(srv.Addr(), DialOptions{AuthToken: "s3cret", Timeout: -1}); err == nil {
		plain.Close()
		t.Fatal("plaintext dial to a TLS server must fail")
	}
}

// TestRetryDelayHint pins the backoff selection (satellite: honor the
// daemon's RetryAfter instead of fixed jitter): a hint is used verbatim,
// hint-less errors fall back to capped jitter, and both clip to the
// caller's budget.
func TestRetryDelayHint(t *testing.T) {
	far := time.Now().Add(time.Hour)
	if d := retryDelay(&UnavailableError{RetryAfter: 123 * time.Millisecond}, 0, far); d != 123*time.Millisecond {
		t.Fatalf("hinted delay = %v, want the 123ms hint verbatim", d)
	}
	if d := retryDelay(&UnavailableError{RetryAfter: 123 * time.Millisecond}, 7, far); d != 123*time.Millisecond {
		t.Fatalf("hint must not grow with attempts: %v", d)
	}
	for i := 0; i < 20; i++ {
		if d := retryDelay(errors.New("conn reset"), 0, far); d < 10*time.Millisecond || d > 60*time.Millisecond {
			t.Fatalf("fallback jitter out of range: %v", d)
		}
	}
	near := time.Now().Add(5 * time.Millisecond)
	if d := retryDelay(&UnavailableError{RetryAfter: time.Minute}, 0, near); d > 5*time.Millisecond {
		t.Fatalf("delay must clip to the budget: %v", d)
	}
}

// TestPredictRetryReconnects drives the full loop over the wire: a
// degraded daemon hands out RetryAfter hints, the client sleeps exactly
// those, and the request lands as soon as the service recovers — within
// the hint window, not a jittered multiple of it.
func TestPredictRetryReconnects(t *testing.T) {
	fb := newFakeBackend()
	fb.hint = 120 * time.Millisecond
	fb.unavailLeft = 2 // recovers after two refusals

	srv, err := NewServer(fb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Shutdown()

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	start := time.Now()
	preds, err := cli.PredictRetry("m", [][]float64{{1, 2}}, 10*time.Second)
	elapsed := time.Since(start)
	if err != nil || preds[0] != 7 {
		t.Fatalf("PredictRetry = %v, %v", preds, err)
	}
	// Two refusals sleeping the 120ms hint each: success must land in
	// roughly 2 hints — well before the >1s the old fixed capped jitter
	// would have accumulated, and not before the hints were respected.
	if elapsed < 240*time.Millisecond {
		t.Fatalf("recovered in %v: the RetryAfter hints were not honored", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("recovered in %v: hint-driven backoff should be ~240ms", elapsed)
	}
	fb.mu.Lock()
	calls := fb.calls
	fb.mu.Unlock()
	if calls != 3 {
		t.Fatalf("daemon saw %d predict calls, want 3", calls)
	}

	// A non-retriable error returns immediately.
	if _, err := cli.PredictRetry("nope", [][]float64{{1, 2}}, time.Second); err == nil ||
		errors.Is(err, ErrUnavailable) {
		t.Fatalf("unknown model through PredictRetry = %v", err)
	}
}

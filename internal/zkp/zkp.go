// Package zkp implements the Σ-protocols Pivot's malicious extension (§9.1)
// uses to make clients prove that their local homomorphic computations are
// consistent with committed data:
//
//   - POPK   — proof of plaintext knowledge for a Paillier ciphertext
//   - POPCM  — proof of plaintext-ciphertext multiplication
//     (Cramer–Damgård–Nielsen, EUROCRYPT'01)
//   - POHDP  — proof of homomorphic dot product (per Helen, S&P'19),
//     composed from POPCM instances plus a public aggregation
//
// All proofs are made non-interactive by the Fiat–Shamir transform over
// SHA-256.  Challenges are 128 bits; commitments use κ = 80 bits of
// statistical masking so responses leak nothing about the witnesses.
package zkp

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/paillier"
)

const challengeBits = 128
const statMask = 80

var one = big.NewInt(1)

// challenge derives the Fiat–Shamir challenge from the transcript parts.
func challenge(parts ...*big.Int) *big.Int {
	h := sha256.New()
	for _, p := range parts {
		b := p.Bytes()
		var lenb [4]byte
		lenb[0] = byte(len(b) >> 24)
		lenb[1] = byte(len(b) >> 16)
		lenb[2] = byte(len(b) >> 8)
		lenb[3] = byte(len(b))
		h.Write(lenb[:])
		h.Write(b)
	}
	sum := h.Sum(nil)
	e := new(big.Int).SetBytes(sum)
	return e.Rsh(e, uint(len(sum)*8-challengeBits))
}

// obfuscator draws a commitment pair (s, s^N mod N²): every Σ-protocol
// commitment below multiplies in an s^N term, which is exactly the shape the
// key's randomness pool precomputes, so provers ride the same fixed-base
// acceleration as the encrypt path.
func obfuscator(pk *paillier.PublicKey) (*big.Int, *big.Int, error) {
	return pk.Obfuscator(rand.Reader)
}

// gPow computes (1+N)^x mod N² = 1 + xN (for x reduced mod N).
func gPow(pk *paillier.PublicKey, x *big.Int) *big.Int {
	xm := new(big.Int).Mod(x, pk.N)
	v := new(big.Int).Mul(xm, pk.N)
	v.Add(v, one)
	return v.Mod(v, pk.N2)
}

// POPK proves knowledge of the plaintext (and randomness) of a ciphertext.
type POPK struct {
	U *big.Int // commitment (1+N)^a · s^N
	Z *big.Int // a + e·x over ℤ
	W *big.Int // s · r^e mod N²
}

// ProvePOPK proves knowledge of (x, r) with c = (1+N)^x · r^N mod N².
// x must be the ring-encoded plaintext in [0, N).
func ProvePOPK(pk *paillier.PublicKey, c *paillier.Ciphertext, x, r *big.Int) (*POPK, error) {
	aBound := new(big.Int).Lsh(pk.N, challengeBits+statMask)
	a, err := rand.Int(rand.Reader, aBound)
	if err != nil {
		return nil, err
	}
	s, sN, err := obfuscator(pk)
	if err != nil {
		return nil, err
	}
	u := new(big.Int).Mul(gPow(pk, a), sN)
	u.Mod(u, pk.N2)
	e := challenge(pk.N, c.C, u)
	z := new(big.Int).Mul(e, x)
	z.Add(z, a)
	w := new(big.Int).Exp(r, e, pk.N2)
	w.Mul(w, s)
	w.Mod(w, pk.N2)
	return &POPK{U: u, Z: z, W: w}, nil
}

// VerifyPOPK checks a POPK against its ciphertext.
func VerifyPOPK(pk *paillier.PublicKey, c *paillier.Ciphertext, pr *POPK) error {
	if pr == nil || pr.U == nil || pr.Z == nil || pr.W == nil {
		return errors.New("zkp: malformed POPK")
	}
	e := challenge(pk.N, c.C, pr.U)
	lhs := new(big.Int).Mul(gPow(pk, pr.Z), new(big.Int).Exp(pr.W, pk.N, pk.N2))
	lhs.Mod(lhs, pk.N2)
	rhs := new(big.Int).Exp(c.C, e, pk.N2)
	rhs.Mul(rhs, pr.U)
	rhs.Mod(rhs, pk.N2)
	if lhs.Cmp(rhs) != 0 {
		return errors.New("zkp: POPK verification failed")
	}
	return nil
}

// POPCM proves that c3 encrypts x·Dec(c2), where x is the plaintext of a
// commitment ciphertext c1 the prover knows how to open.
type POPCM struct {
	U1 *big.Int // (1+N)^a · s_a^N
	U2 *big.Int // c2^a · s_b^N
	Z  *big.Int // a + e·x over ℤ
	W1 *big.Int // s_a · r1^e
	W2 *big.Int // s_b · rho^e
}

// ProvePOPCM proves c3 = c2^x · rho^N where c1 = (1+N)^x · r1^N is the
// prover's commitment to x (ring-encoded).
func ProvePOPCM(pk *paillier.PublicKey, c1, c2, c3 *paillier.Ciphertext, x, r1, rho *big.Int) (*POPCM, error) {
	aBound := new(big.Int).Lsh(pk.N, challengeBits+statMask)
	a, err := rand.Int(rand.Reader, aBound)
	if err != nil {
		return nil, err
	}
	sa, saN, err := obfuscator(pk)
	if err != nil {
		return nil, err
	}
	sb, sbN, err := obfuscator(pk)
	if err != nil {
		return nil, err
	}
	u1 := new(big.Int).Mul(gPow(pk, a), saN)
	u1.Mod(u1, pk.N2)
	u2 := new(big.Int).Mul(new(big.Int).Exp(c2.C, a, pk.N2), sbN)
	u2.Mod(u2, pk.N2)
	e := challenge(pk.N, c1.C, c2.C, c3.C, u1, u2)
	z := new(big.Int).Mul(e, x)
	z.Add(z, a)
	w1 := new(big.Int).Exp(r1, e, pk.N2)
	w1.Mul(w1, sa)
	w1.Mod(w1, pk.N2)
	w2 := new(big.Int).Exp(rho, e, pk.N2)
	w2.Mul(w2, sb)
	w2.Mod(w2, pk.N2)
	return &POPCM{U1: u1, U2: u2, Z: z, W1: w1, W2: w2}, nil
}

// VerifyPOPCM checks the multiplicative relation between c1, c2, c3.
func VerifyPOPCM(pk *paillier.PublicKey, c1, c2, c3 *paillier.Ciphertext, pr *POPCM) error {
	if pr == nil || pr.U1 == nil || pr.U2 == nil || pr.Z == nil || pr.W1 == nil || pr.W2 == nil {
		return errors.New("zkp: malformed POPCM")
	}
	e := challenge(pk.N, c1.C, c2.C, c3.C, pr.U1, pr.U2)
	// (1+N)^z · w1^N == u1 · c1^e
	lhs1 := new(big.Int).Mul(gPow(pk, pr.Z), new(big.Int).Exp(pr.W1, pk.N, pk.N2))
	lhs1.Mod(lhs1, pk.N2)
	rhs1 := new(big.Int).Exp(c1.C, e, pk.N2)
	rhs1.Mul(rhs1, pr.U1)
	rhs1.Mod(rhs1, pk.N2)
	if lhs1.Cmp(rhs1) != 0 {
		return errors.New("zkp: POPCM commitment check failed")
	}
	// c2^z · w2^N == u2 · c3^e
	lhs2 := new(big.Int).Exp(c2.C, pr.Z, pk.N2)
	lhs2.Mul(lhs2, new(big.Int).Exp(pr.W2, pk.N, pk.N2))
	lhs2.Mod(lhs2, pk.N2)
	rhs2 := new(big.Int).Exp(c3.C, e, pk.N2)
	rhs2.Mul(rhs2, pr.U2)
	rhs2.Mod(rhs2, pk.N2)
	if lhs2.Cmp(rhs2) != 0 {
		return errors.New("zkp: POPCM product check failed")
	}
	return nil
}

// MulCommitted computes c3 = c2^x · rho^N together with the randomness, for
// use with ProvePOPCM.  x is the ring-encoded plaintext.
func MulCommitted(pk *paillier.PublicKey, c2 *paillier.Ciphertext, x *big.Int) (*paillier.Ciphertext, *big.Int, error) {
	rho, rhoN, err := obfuscator(pk)
	if err != nil {
		return nil, nil, err
	}
	c3 := new(big.Int).Exp(c2.C, x, pk.N2)
	c3.Mul(c3, rhoN)
	c3.Mod(c3, pk.N2)
	return &paillier.Ciphertext{C: c3}, rho, nil
}

// POHDP proves res = v ⊙ [γ] for a committed plaintext vector v: one POPCM
// per component ties t_j = γ_j^{v_j}·rho_j^N to the commitment of v_j, and
// the verifier re-aggregates res = Π t_j publicly.
type POHDP struct {
	Terms  []*paillier.Ciphertext
	Proofs []*POPCM
}

// ProvePOHDP proves that res was computed as the homomorphic dot product of
// committed v (with commitments comms = Enc(v_j; rs_j)) and public γ.
// It returns the proof and the (rerandomized) result ciphertext.
func ProvePOHDP(pk *paillier.PublicKey, comms, gamma []*paillier.Ciphertext, v, rs []*big.Int) (*POHDP, *paillier.Ciphertext, error) {
	if len(comms) != len(gamma) || len(v) != len(gamma) || len(rs) != len(gamma) {
		return nil, nil, fmt.Errorf("zkp: POHDP length mismatch")
	}
	pr := &POHDP{Terms: make([]*paillier.Ciphertext, len(v)), Proofs: make([]*POPCM, len(v))}
	acc := &paillier.Ciphertext{C: new(big.Int).Set(one)}
	for j := range v {
		x := pk.EncodeSigned(v[j])
		t, rho, err := MulCommitted(pk, gamma[j], x)
		if err != nil {
			return nil, nil, err
		}
		proof, err := ProvePOPCM(pk, comms[j], gamma[j], t, x, rs[j], rho)
		if err != nil {
			return nil, nil, err
		}
		pr.Terms[j] = t
		pr.Proofs[j] = proof
		acc = pk.Add(acc, t)
	}
	return pr, acc, nil
}

// VerifyPOHDP checks every component proof and that res aggregates them.
func VerifyPOHDP(pk *paillier.PublicKey, comms, gamma []*paillier.Ciphertext, res *paillier.Ciphertext, pr *POHDP) error {
	if pr == nil || len(pr.Terms) != len(gamma) || len(pr.Proofs) != len(gamma) {
		return errors.New("zkp: malformed POHDP")
	}
	acc := &paillier.Ciphertext{C: new(big.Int).Set(one)}
	for j := range gamma {
		if err := VerifyPOPCM(pk, comms[j], gamma[j], pr.Terms[j], pr.Proofs[j]); err != nil {
			return fmt.Errorf("zkp: POHDP component %d: %w", j, err)
		}
		acc = pk.Add(acc, pr.Terms[j])
	}
	if acc.C.Cmp(res.C) != 0 {
		return errors.New("zkp: POHDP aggregation mismatch")
	}
	return nil
}

package zkp

import (
	"crypto/rand"
	"math/big"
	"testing"

	"repro/internal/paillier"
)

func keys(t testing.TB) *paillier.PublicKey {
	t.Helper()
	pk, _, _, err := paillier.KeyGen(rand.Reader, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	return pk
}

func TestPOPKRoundTrip(t *testing.T) {
	pk := keys(t)
	for _, v := range []int64{0, 1, 42, -17} {
		x := pk.EncodeSigned(big.NewInt(v))
		ct, r, err := pk.EncryptWithNonce(rand.Reader, big.NewInt(v))
		if err != nil {
			t.Fatal(err)
		}
		pr, err := ProvePOPK(pk, ct, x, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyPOPK(pk, ct, pr); err != nil {
			t.Fatalf("honest POPK rejected for %d: %v", v, err)
		}
	}
}

func TestPOPKRejectsWrongCiphertext(t *testing.T) {
	pk := keys(t)
	x := pk.EncodeSigned(big.NewInt(5))
	ct, r, _ := pk.EncryptWithNonce(rand.Reader, big.NewInt(5))
	other, _ := pk.EncryptInt64(rand.Reader, 6)
	pr, err := ProvePOPK(pk, ct, x, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPOPK(pk, other, pr); err == nil {
		t.Fatal("POPK accepted for a different ciphertext")
	}
}

func TestPOPKRejectsTamperedProof(t *testing.T) {
	pk := keys(t)
	x := pk.EncodeSigned(big.NewInt(9))
	ct, r, _ := pk.EncryptWithNonce(rand.Reader, big.NewInt(9))
	pr, _ := ProvePOPK(pk, ct, x, r)
	pr.Z = new(big.Int).Add(pr.Z, big.NewInt(1))
	if err := VerifyPOPK(pk, ct, pr); err == nil {
		t.Fatal("tampered POPK accepted")
	}
	if err := VerifyPOPK(pk, ct, nil); err == nil {
		t.Fatal("nil POPK accepted")
	}
}

func TestPOPCMRoundTrip(t *testing.T) {
	pk := keys(t)
	for _, xv := range []int64{0, 1, 3, -2} {
		x := pk.EncodeSigned(big.NewInt(xv))
		c1, r1, _ := pk.EncryptWithNonce(rand.Reader, big.NewInt(xv))
		c2, _ := pk.EncryptInt64(rand.Reader, 11)
		c3, rho, err := MulCommitted(pk, c2, x)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := ProvePOPCM(pk, c1, c2, c3, x, r1, rho)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyPOPCM(pk, c1, c2, c3, pr); err != nil {
			t.Fatalf("honest POPCM rejected for x=%d: %v", xv, err)
		}
	}
}

func TestPOPCMRejectsWrongProduct(t *testing.T) {
	pk := keys(t)
	x := pk.EncodeSigned(big.NewInt(3))
	c1, r1, _ := pk.EncryptWithNonce(rand.Reader, big.NewInt(3))
	c2, _ := pk.EncryptInt64(rand.Reader, 11)
	c3, rho, _ := MulCommitted(pk, c2, x)
	pr, _ := ProvePOPCM(pk, c1, c2, c3, x, r1, rho)
	// Claim a different product (e.g. 4·11 instead of 3·11).
	wrong, _ := pk.EncryptInt64(rand.Reader, 44)
	if err := VerifyPOPCM(pk, c1, c2, wrong, pr); err == nil {
		t.Fatal("POPCM accepted a wrong product")
	}
}

func TestPOPCMRejectsWrongCommitment(t *testing.T) {
	pk := keys(t)
	x := pk.EncodeSigned(big.NewInt(3))
	c1, r1, _ := pk.EncryptWithNonce(rand.Reader, big.NewInt(3))
	c2, _ := pk.EncryptInt64(rand.Reader, 11)
	c3, rho, _ := MulCommitted(pk, c2, x)
	pr, _ := ProvePOPCM(pk, c1, c2, c3, x, r1, rho)
	otherCommit, _ := pk.EncryptInt64(rand.Reader, 4)
	if err := VerifyPOPCM(pk, otherCommit, c2, c3, pr); err == nil {
		t.Fatal("POPCM accepted a mismatched commitment")
	}
}

func TestPOHDPRoundTrip(t *testing.T) {
	pk := keys(t)
	v := []*big.Int{big.NewInt(1), big.NewInt(0), big.NewInt(1), big.NewInt(1)}
	gammaVals := []int64{5, 7, -2, 4}
	gamma := make([]*paillier.Ciphertext, len(v))
	comms := make([]*paillier.Ciphertext, len(v))
	rs := make([]*big.Int, len(v))
	for j := range v {
		gamma[j], _ = pk.EncryptInt64(rand.Reader, gammaVals[j])
		var err error
		comms[j], rs[j], err = pk.EncryptWithNonce(rand.Reader, v[j])
		if err != nil {
			t.Fatal(err)
		}
	}
	pr, res, err := ProvePOHDP(pk, comms, gamma, v, rs)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPOHDP(pk, comms, gamma, res, pr); err != nil {
		t.Fatalf("honest POHDP rejected: %v", err)
	}
	// The result must decrypt to the actual dot product (1·5 + 0·7 + 1·-2 + 1·4 = 7).
	pk2, sk, _, err := paillier.KeyGen(rand.Reader, 256, 1)
	_ = pk2
	if err == nil && sk != nil {
		// Can't decrypt with a different key; just verify aggregation is
		// checked instead:
		bogus, _ := pk.EncryptInt64(rand.Reader, 7)
		if err := VerifyPOHDP(pk, comms, gamma, bogus, pr); err == nil {
			t.Fatal("POHDP accepted a rerandomized (unproven) result")
		}
	}
}

func TestPOHDPRejectsFlippedSelector(t *testing.T) {
	pk := keys(t)
	v := []*big.Int{big.NewInt(1), big.NewInt(0)}
	gamma := make([]*paillier.Ciphertext, 2)
	comms := make([]*paillier.Ciphertext, 2)
	rs := make([]*big.Int, 2)
	for j := range v {
		gamma[j], _ = pk.EncryptInt64(rand.Reader, int64(j+3))
		comms[j], rs[j], _ = pk.EncryptWithNonce(rand.Reader, v[j])
	}
	pr, res, _ := ProvePOHDP(pk, comms, gamma, v, rs)
	// Swap the commitments: the proof should no longer verify.
	if err := VerifyPOHDP(pk, []*paillier.Ciphertext{comms[1], comms[0]}, gamma, res, pr); err == nil {
		t.Fatal("POHDP accepted against swapped commitments")
	}
}

func TestPOHDPLengthMismatch(t *testing.T) {
	pk := keys(t)
	c, _ := pk.EncryptInt64(rand.Reader, 1)
	if _, _, err := ProvePOHDP(pk, []*paillier.Ciphertext{c}, nil, nil, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

package tree

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dataset"
)

// Ensemble baselines: NP-RF and NP-GBDT (§2.3, §7 of the paper).

// EnsembleHyper extends Hyper with ensemble parameters (W = NumTrees).
type EnsembleHyper struct {
	Hyper
	NumTrees     int
	LearningRate float64 // GBDT shrinkage ν
	Subsample    float64 // RF bootstrap fraction (1.0 = n samples)
	Seed         uint64
}

// DefaultEnsembleHyper matches the evaluation defaults.
func DefaultEnsembleHyper() EnsembleHyper {
	return EnsembleHyper{Hyper: DefaultHyper(), NumTrees: 8, LearningRate: 0.1, Subsample: 1.0}
}

func (h EnsembleHyper) withDefaults() EnsembleHyper {
	h.Hyper = h.Hyper.withDefaults()
	if h.NumTrees == 0 {
		h.NumTrees = 8
	}
	if h.LearningRate == 0 {
		h.LearningRate = 0.1
	}
	if h.Subsample == 0 {
		h.Subsample = 1.0
	}
	return h
}

// RandomForest is a bagged ensemble of CART trees.
type RandomForest struct {
	Trees   []*DecisionTree
	Classes int
}

// FitForest trains NumTrees independent trees on bootstrap resamples.
func FitForest(ds *dataset.Dataset, h EnsembleHyper) (*RandomForest, error) {
	h = h.withDefaults()
	rng := rand.New(rand.NewPCG(h.Seed, h.Seed^0xabcdef))
	rf := &RandomForest{Classes: ds.Classes}
	for w := 0; w < h.NumTrees; w++ {
		boot := bootstrap(ds, h.Subsample, rng)
		t, err := Fit(boot, h.Hyper)
		if err != nil {
			return nil, fmt.Errorf("tree %d: %w", w, err)
		}
		rf.Trees = append(rf.Trees, t)
	}
	return rf, nil
}

func bootstrap(ds *dataset.Dataset, frac float64, rng *rand.Rand) *dataset.Dataset {
	n := int(math.Round(float64(ds.N()) * frac))
	if n < 1 {
		n = 1
	}
	out := &dataset.Dataset{Classes: ds.Classes, Names: ds.Names}
	out.X = make([][]float64, n)
	out.Y = make([]float64, n)
	for i := 0; i < n; i++ {
		t := rng.IntN(ds.N())
		out.X[i] = ds.X[t]
		out.Y[i] = ds.Y[t]
	}
	return out
}

// Predict votes (classification) or averages (regression).
func (rf *RandomForest) Predict(x []float64) float64 {
	if rf.Classes > 0 {
		votes := make([]int, rf.Classes)
		for _, t := range rf.Trees {
			votes[int(t.Predict(x))]++
		}
		best := 0
		for k, v := range votes {
			if v > votes[best] {
				best = k
			}
		}
		return float64(best)
	}
	var s float64
	for _, t := range rf.Trees {
		s += t.Predict(x)
	}
	return s / float64(len(rf.Trees))
}

// PredictBatch predicts every row.
func (rf *RandomForest) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = rf.Predict(x)
	}
	return out
}

// FeatureImportance averages the member trees' normalized importances.
func (rf *RandomForest) FeatureImportance(d int) []float64 {
	return averageImportance(rf.Trees, d)
}

func averageImportance(trees []*DecisionTree, d int) []float64 {
	imp := make([]float64, d)
	if len(trees) == 0 {
		return imp
	}
	for _, t := range trees {
		for j, v := range t.FeatureImportance(d) {
			imp[j] += v / float64(len(trees))
		}
	}
	return imp
}

// GBDT is a gradient-boosted ensemble.  Regression boosts squared loss;
// classification uses the paper's one-vs-the-rest construction (§7.2): one
// regression forest per class, combined by softmax.
type GBDT struct {
	Classes      int
	LearningRate float64
	Base         float64           // initial prediction (regression mean)
	Forests      [][]*DecisionTree // [class][round] (1 class for regression)
}

// FeatureImportance averages importances across every boosted tree.
func (g *GBDT) FeatureImportance(d int) []float64 {
	var all []*DecisionTree
	for _, f := range g.Forests {
		all = append(all, f...)
	}
	return averageImportance(all, d)
}

// FitGBDT trains a boosted ensemble.
func FitGBDT(ds *dataset.Dataset, h EnsembleHyper) (*GBDT, error) {
	h = h.withDefaults()
	if ds.IsClassification() {
		return fitGBDTClassification(ds, h)
	}
	return fitGBDTRegression(ds, h)
}

func fitGBDTRegression(ds *dataset.Dataset, h EnsembleHyper) (*GBDT, error) {
	g := &GBDT{LearningRate: h.LearningRate, Forests: make([][]*DecisionTree, 1)}
	var mean float64
	for _, y := range ds.Y {
		mean += y
	}
	mean /= float64(ds.N())
	g.Base = mean
	resid := ds.Clone()
	pred := make([]float64, ds.N())
	for i := range pred {
		pred[i] = mean
		resid.Y[i] = ds.Y[i] - mean
	}
	for w := 0; w < h.NumTrees; w++ {
		t, err := Fit(resid, h.Hyper)
		if err != nil {
			return nil, err
		}
		g.Forests[0] = append(g.Forests[0], t)
		for i := range pred {
			pred[i] += h.LearningRate * t.Predict(ds.X[i])
			resid.Y[i] = ds.Y[i] - pred[i]
		}
	}
	return g, nil
}

func fitGBDTClassification(ds *dataset.Dataset, h EnsembleHyper) (*GBDT, error) {
	c := ds.Classes
	g := &GBDT{Classes: c, LearningRate: h.LearningRate, Forests: make([][]*DecisionTree, c)}
	n := ds.N()
	scores := make([][]float64, c) // raw scores per class per sample
	onehot := make([][]float64, c)
	for k := 0; k < c; k++ {
		scores[k] = make([]float64, n)
		onehot[k] = make([]float64, n)
		for i := 0; i < n; i++ {
			if int(ds.Y[i]) == k {
				onehot[k][i] = 1
			}
		}
	}
	resid := ds.Clone()
	resid.Classes = 0 // regression trees on residuals
	for w := 0; w < h.NumTrees; w++ {
		probs := softmaxScores(scores)
		for k := 0; k < c; k++ {
			for i := 0; i < n; i++ {
				resid.Y[i] = onehot[k][i] - probs[k][i]
			}
			t, err := Fit(resid, h.Hyper)
			if err != nil {
				return nil, err
			}
			g.Forests[k] = append(g.Forests[k], t)
			for i := 0; i < n; i++ {
				scores[k][i] += h.LearningRate * t.Predict(ds.X[i])
			}
		}
	}
	return g, nil
}

func softmaxScores(scores [][]float64) [][]float64 {
	c := len(scores)
	n := len(scores[0])
	out := make([][]float64, c)
	for k := range out {
		out[k] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		var max float64 = math.Inf(-1)
		for k := 0; k < c; k++ {
			if scores[k][i] > max {
				max = scores[k][i]
			}
		}
		var sum float64
		for k := 0; k < c; k++ {
			out[k][i] = math.Exp(scores[k][i] - max)
			sum += out[k][i]
		}
		for k := 0; k < c; k++ {
			out[k][i] /= sum
		}
	}
	return out
}

// Predict returns the boosted prediction for one sample.
func (g *GBDT) Predict(x []float64) float64 {
	if g.Classes == 0 {
		s := g.Base
		for _, t := range g.Forests[0] {
			s += g.LearningRate * t.Predict(x)
		}
		return s
	}
	best, bestScore := 0, math.Inf(-1)
	for k := 0; k < g.Classes; k++ {
		var s float64
		for _, t := range g.Forests[k] {
			s += g.LearningRate * t.Predict(x)
		}
		if s > bestScore {
			best, bestScore = k, s
		}
	}
	return float64(best)
}

// PredictBatch predicts every row.
func (g *GBDT) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = g.Predict(x)
	}
	return out
}

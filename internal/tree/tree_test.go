package tree

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestDecisionTreeLearnsSeparableData(t *testing.T) {
	ds := dataset.SyntheticClassification(400, 6, 2, 3.0, 1)
	train, test := dataset.Split(ds, 0.25, 2)
	tr, err := Fit(train, Hyper{MaxDepth: 4, MaxSplits: 8})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(tr.PredictBatch(test.X), test.Y)
	if acc < 0.85 {
		t.Fatalf("accuracy %v too low for well-separated data", acc)
	}
}

func TestDecisionTreeMulticlass(t *testing.T) {
	ds := dataset.SyntheticClassification(600, 8, 4, 3.0, 7)
	train, test := dataset.Split(ds, 0.25, 3)
	tr, err := Fit(train, Hyper{MaxDepth: 5, MaxSplits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tr.PredictBatch(test.X), test.Y); acc < 0.7 {
		t.Fatalf("multiclass accuracy %v", acc)
	}
}

func TestDecisionTreeRegression(t *testing.T) {
	ds := dataset.SyntheticRegression(500, 5, 0.1, 4)
	train, test := dataset.Split(ds, 0.25, 5)
	tr, err := Fit(train, Hyper{MaxDepth: 5, MaxSplits: 16})
	if err != nil {
		t.Fatal(err)
	}
	mse := MSE(tr.PredictBatch(test.X), test.Y)
	// Variance of Y is > 1; the tree must explain a useful share of it.
	base := MSE(make([]float64, test.N()), test.Y)
	if mse > base*0.9 {
		t.Fatalf("regression mse %v vs baseline %v", mse, base)
	}
}

func TestDepthRespected(t *testing.T) {
	ds := dataset.SyntheticClassification(300, 5, 2, 0.5, 9)
	for _, h := range []int{1, 2, 3, 4} {
		tr, err := Fit(ds, Hyper{MaxDepth: h, MaxSplits: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Depth(); got > h {
			t.Fatalf("depth %d exceeds max %d", got, h)
		}
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	ds := &dataset.Dataset{
		Classes: 2,
		X:       [][]float64{{1}, {2}, {3}},
		Y:       []float64{1, 1, 1},
	}
	tr, err := Fit(ds, Hyper{MaxDepth: 4, MaxSplits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 || !tr.Nodes[0].Leaf || tr.Nodes[0].Value != 1 {
		t.Fatalf("pure dataset should give a single leaf, got %+v", tr.Nodes)
	}
}

func TestEmptyDatasetErrors(t *testing.T) {
	if _, err := Fit(&dataset.Dataset{Classes: 2}, Hyper{}); err == nil {
		t.Fatal("expected error on empty dataset")
	}
}

func TestInternalNodesCount(t *testing.T) {
	ds := dataset.SyntheticClassification(300, 5, 2, 2.0, 12)
	tr, _ := Fit(ds, Hyper{MaxDepth: 3, MaxSplits: 4})
	leaves := 0
	for _, n := range tr.Nodes {
		if n.Leaf {
			leaves++
		}
	}
	if tr.InternalNodes() != leaves-1 {
		t.Fatalf("binary tree invariant violated: %d internal, %d leaves", tr.InternalNodes(), leaves)
	}
}

func TestForestBeatsOrMatchesSingleTreeShape(t *testing.T) {
	ds := dataset.SyntheticClassification(500, 8, 3, 2.0, 21)
	train, test := dataset.Split(ds, 0.25, 22)
	rf, err := FitForest(train, EnsembleHyper{Hyper: Hyper{MaxDepth: 4, MaxSplits: 8}, NumTrees: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rf.Trees) != 10 {
		t.Fatalf("forest has %d trees", len(rf.Trees))
	}
	if acc := Accuracy(rf.PredictBatch(test.X), test.Y); acc < 0.75 {
		t.Fatalf("forest accuracy %v", acc)
	}
}

func TestForestRegression(t *testing.T) {
	ds := dataset.SyntheticRegression(400, 5, 0.2, 31)
	train, test := dataset.Split(ds, 0.25, 32)
	rf, err := FitForest(train, EnsembleHyper{Hyper: Hyper{MaxDepth: 5, MaxSplits: 8}, NumTrees: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	base := meanBaselineMSE(test)
	if mse := MSE(rf.PredictBatch(test.X), test.Y); mse > base {
		t.Fatalf("forest mse %v above mean baseline %v", mse, base)
	}
}

func TestGBDTRegressionImprovesWithRounds(t *testing.T) {
	ds := dataset.SyntheticRegression(500, 5, 0.1, 41)
	train, test := dataset.Split(ds, 0.25, 42)
	var prev float64 = math.Inf(1)
	for _, w := range []int{1, 4, 16} {
		g, err := FitGBDT(train, EnsembleHyper{Hyper: Hyper{MaxDepth: 3, MaxSplits: 8}, NumTrees: w, LearningRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		mse := MSE(g.PredictBatch(test.X), test.Y)
		if mse > prev*1.1 {
			t.Fatalf("mse went up with more rounds: %v -> %v (W=%d)", prev, mse, w)
		}
		prev = mse
	}
}

func TestGBDTClassification(t *testing.T) {
	ds := dataset.SyntheticClassification(500, 6, 3, 2.5, 51)
	train, test := dataset.Split(ds, 0.25, 52)
	g, err := FitGBDT(train, EnsembleHyper{Hyper: Hyper{MaxDepth: 3, MaxSplits: 8}, NumTrees: 6, LearningRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Forests) != 3 {
		t.Fatalf("one-vs-rest should build %d forests, got %d", 3, len(g.Forests))
	}
	if acc := Accuracy(g.PredictBatch(test.X), test.Y); acc < 0.75 {
		t.Fatalf("gbdt accuracy %v", acc)
	}
}

func meanBaselineMSE(ds *dataset.Dataset) float64 {
	var mean float64
	for _, y := range ds.Y {
		mean += y
	}
	mean /= float64(ds.N())
	pred := make([]float64, ds.N())
	for i := range pred {
		pred[i] = mean
	}
	return MSE(pred, ds.Y)
}

func TestAccuracyAndMSEHelpers(t *testing.T) {
	if a := Accuracy([]float64{1, 2, 3}, []float64{1, 0, 3}); math.Abs(a-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %v", a)
	}
	if m := MSE([]float64{1, 2}, []float64{0, 0}); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("mse %v", m)
	}
	if Accuracy(nil, nil) != 0 || MSE(nil, nil) != 0 {
		t.Fatal("empty metrics should be 0")
	}
}

package tree

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestEntropyImpurityScore(t *testing.T) {
	// Two classes, 3 vs 1 → score = Σ p ln p = 0.75·ln0.75 + 0.25·ln0.25.
	ds := &dataset.Dataset{
		Classes: 2,
		X:       [][]float64{{0}, {0}, {0}, {0}},
		Y:       []float64{0, 0, 0, 1},
	}
	got := impurityScore(ds, []int{0, 1, 2, 3}, Entropy)
	want := 0.75*math.Log(0.75) + 0.25*math.Log(0.25)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("entropy score %v, want %v", got, want)
	}
	// A pure node's entropy score is 0 (1·ln 1), the maximum.
	if s := impurityScore(ds, []int{0, 1, 2}, Entropy); s != 0 {
		t.Fatalf("pure node score %v, want 0", s)
	}
}

func TestEntropyCriterionLearns(t *testing.T) {
	ds := dataset.SyntheticClassification(300, 6, 3, 2.5, 31)
	h := DefaultHyper()
	h.Criterion = Entropy
	tr, err := Fit(ds, h)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(tr.PredictBatch(ds.X), ds.Y)
	if acc < 0.85 {
		t.Fatalf("entropy tree training accuracy %.2f", acc)
	}
}

func TestGiniAndEntropyUsuallyAgree(t *testing.T) {
	// Gini and information gain are different functionals, but on a well
	// separated dataset they should produce trees of comparable quality.
	ds := dataset.SyntheticClassification(400, 5, 2, 3.0, 77)
	train, test := dataset.Split(ds, 0.25, 5)
	var accs [2]float64
	for i, crit := range []Criterion{Gini, Entropy} {
		h := DefaultHyper()
		h.Criterion = crit
		tr, err := Fit(train, h)
		if err != nil {
			t.Fatal(err)
		}
		accs[i] = Accuracy(tr.PredictBatch(test.X), test.Y)
	}
	if math.Abs(accs[0]-accs[1]) > 0.15 {
		t.Fatalf("gini %.2f and entropy %.2f accuracies diverge too much", accs[0], accs[1])
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" || GainRatio.String() != "gain-ratio" {
		t.Fatal("criterion names wrong")
	}
}

func TestSplitInfo(t *testing.T) {
	// 2 left / 2 right → split info = ln 2 (maximal for a binary split).
	ds := &dataset.Dataset{
		Classes: 2,
		X:       [][]float64{{0}, {1}, {2}, {3}},
		Y:       []float64{0, 0, 1, 1},
	}
	got := splitInfo(ds, []int{0, 1, 2, 3}, 0, 1.5)
	if math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("split info %v, want ln2", got)
	}
	// Degenerate split (everything left) → 0.
	if si := splitInfo(ds, []int{0, 1, 2, 3}, 0, 99); si != 0 {
		t.Fatalf("degenerate split info %v, want 0", si)
	}
}

func TestGainRatioCriterionLearns(t *testing.T) {
	ds := dataset.SyntheticClassification(300, 6, 3, 2.5, 41)
	h := DefaultHyper()
	h.Criterion = GainRatio
	tr, err := Fit(ds, h)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(tr.PredictBatch(ds.X), ds.Y)
	if acc < 0.85 {
		t.Fatalf("gain-ratio tree training accuracy %.2f", acc)
	}
}

func TestGainRatioPenalizesUnbalancedSplits(t *testing.T) {
	// Construct a node where a degenerate split and a balanced split yield
	// the same information gain; gain ratio must prefer the balanced one.
	// Feature 0 separates classes perfectly with a balanced 2/2 split;
	// feature 1 only peels off one sample.
	ds := &dataset.Dataset{
		Classes: 2,
		X: [][]float64{
			{0, 0}, {0, 1}, {1, 1}, {1, 1},
		},
		Y: []float64{0, 0, 1, 1},
	}
	h := Hyper{MaxDepth: 1, MaxSplits: 4, MinSamplesSplit: 2, Criterion: GainRatio}
	tr, err := Fit(ds, h)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes[0].Feature != 0 {
		t.Fatalf("gain ratio picked feature %d, want the balanced feature 0", tr.Nodes[0].Feature)
	}
}

func TestFeatureImportance(t *testing.T) {
	// Only feature 0 carries signal: importance must concentrate there.
	ds := dataset.SyntheticClassification(200, 1, 2, 3.0, 3)
	for i := range ds.X {
		ds.X[i] = append(ds.X[i], float64(i%7)) // pure-noise second column
	}
	ds.Names = append(ds.Names, "noise")
	tr, err := Fit(ds, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance(2)
	sum := imp[0] + imp[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v, want 1", sum)
	}
	if imp[0] < 0.75 {
		t.Fatalf("signal feature importance %v, want dominant", imp[0])
	}
}

func TestEnsembleFeatureImportance(t *testing.T) {
	ds := dataset.SyntheticClassification(200, 1, 2, 3.0, 9)
	for i := range ds.X {
		ds.X[i] = append(ds.X[i], float64(i%5)) // noise column
	}
	ds.Names = append(ds.Names, "noise")
	eh := DefaultEnsembleHyper()
	eh.NumTrees = 4
	rf, err := FitForest(ds, eh)
	if err != nil {
		t.Fatal(err)
	}
	rfImp := rf.FeatureImportance(2)
	if rfImp[0] < rfImp[1] {
		t.Fatalf("forest importance %v should favor the signal feature", rfImp)
	}
	g, err := FitGBDT(ds, eh)
	if err != nil {
		t.Fatal(err)
	}
	gImp := g.FeatureImportance(2)
	if gImp[0] < gImp[1] {
		t.Fatalf("gbdt importance %v should favor the signal feature", gImp)
	}
}

func TestFeatureImportanceLoneLeaf(t *testing.T) {
	ds := &dataset.Dataset{Classes: 2, X: [][]float64{{1}}, Y: []float64{0}}
	tr, err := Fit(ds, DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance(1)
	if imp[0] != 0 {
		t.Fatalf("lone leaf importance %v, want 0", imp[0])
	}
}

func TestEntropyRegressionUnaffected(t *testing.T) {
	// Criterion only applies to classification; regression fits must be
	// identical under both settings.
	ds := dataset.SyntheticRegression(200, 4, 0.2, 13)
	hg := DefaultHyper()
	he := DefaultHyper()
	he.Criterion = Entropy
	tg, err := Fit(ds, hg)
	if err != nil {
		t.Fatal(err)
	}
	te, err := Fit(ds, he)
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Nodes) != len(te.Nodes) {
		t.Fatalf("regression trees differ: %d vs %d nodes", len(tg.Nodes), len(te.Nodes))
	}
	for i := range tg.Nodes {
		if tg.Nodes[i] != te.Nodes[i] {
			t.Fatalf("regression node %d differs", i)
		}
	}
}

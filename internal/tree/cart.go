// Package tree implements plain (non-private) CART decision trees, random
// forests and gradient-boosting ensembles.  These serve two roles in the
// reproduction: (i) the NP-DT / NP-RF / NP-GBDT accuracy baselines of Table
// 3, and (ii) the reference semantics the Pivot protocols are tested
// against — Pivot trained on the same data must produce (up to fixed-point
// rounding) the same trees.
package tree

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Criterion selects the classification impurity measure.  The paper uses
// Gini (CART); Entropy gives the ID3/C4.5-style information gain the paper
// notes "can be easily generalized" (§2.3).  Regression always uses label
// variance.
type Criterion int

const (
	// Gini impurity, Eqn (4).
	Gini Criterion = iota
	// Entropy (information gain), the ID3 variant.
	Entropy
	// GainRatio normalizes the information gain by the split information
	// −(w_l·ln w_l + w_r·ln w_r), the C4.5 variant.
	GainRatio
)

func (c Criterion) String() string {
	switch c {
	case Entropy:
		return "entropy"
	case GainRatio:
		return "gain-ratio"
	default:
		return "gini"
	}
}

// splitInfoEps regularizes the gain-ratio denominator so near-degenerate
// splits (all samples on one side) do not divide by ~0.  The secure
// implementation applies the same constant, keeping the two in agreement.
const splitInfoEps = 1.0 / 256

// Hyper are the CART hyper-parameters, matching the paper's Table 4 names:
// h is MaxDepth, b is MaxSplits.
type Hyper struct {
	MaxDepth        int
	MaxSplits       int // b: max candidate split values per feature
	MinSamplesSplit int // prune when a node has fewer samples
	Criterion       Criterion
}

// DefaultHyper mirrors the evaluation defaults (h=4, b=8).
func DefaultHyper() Hyper {
	return Hyper{MaxDepth: 4, MaxSplits: 8, MinSamplesSplit: 2}
}

func (h Hyper) withDefaults() Hyper {
	if h.MaxDepth == 0 {
		h.MaxDepth = 4
	}
	if h.MaxSplits == 0 {
		h.MaxSplits = 8
	}
	if h.MinSamplesSplit < 2 {
		h.MinSamplesSplit = 2
	}
	return h
}

// Node is one node of a fitted tree, stored in a flat slice.
type Node struct {
	Leaf      bool
	Feature   int     // split feature (internal nodes)
	Threshold float64 // x[Feature] <= Threshold goes left
	Left      int     // child indices into DecisionTree.Nodes
	Right     int
	Value     float64 // leaf prediction (class index or mean)
	Gain      float64 // sample-weighted impurity decrease of this split
}

// DecisionTree is a fitted CART tree.
type DecisionTree struct {
	Nodes   []Node
	Classes int // 0 for regression
}

// Fit builds a CART tree on ds (Algorithm 1 of the paper).
func Fit(ds *dataset.Dataset, h Hyper) (*DecisionTree, error) {
	if ds.N() == 0 {
		return nil, fmt.Errorf("tree: empty dataset")
	}
	h = h.withDefaults()
	t := &DecisionTree{Classes: ds.Classes}
	idx := make([]int, ds.N())
	for i := range idx {
		idx[i] = i
	}
	cands := candidateSplits(ds, h.MaxSplits)
	t.build(ds, idx, cands, h, 0)
	return t, nil
}

// candidateSplits precomputes per-feature candidate thresholds on the full
// training set — the same quantile bucketing Pivot's clients use locally.
func candidateSplits(ds *dataset.Dataset, b int) [][]float64 {
	out := make([][]float64, ds.D())
	for j := range out {
		out[j] = dataset.SplitCandidates(ds.Column(j), b)
	}
	return out
}

func (t *DecisionTree) build(ds *dataset.Dataset, idx []int, cands [][]float64, h Hyper, depth int) int {
	if depth >= h.MaxDepth || len(idx) < h.MinSamplesSplit || pure(ds, idx) {
		return t.leaf(ds, idx)
	}
	feat, thr, gain := bestSplit(ds, idx, cands, h.Criterion)
	if gain <= 0 {
		return t.leaf(ds, idx)
	}
	var left, right []int
	for _, i := range idx {
		if ds.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return t.leaf(ds, idx)
	}
	me := len(t.Nodes)
	weighted := gain * float64(len(idx)) / float64(ds.N())
	t.Nodes = append(t.Nodes, Node{Feature: feat, Threshold: thr, Gain: weighted})
	l := t.build(ds, left, cands, h, depth+1)
	r := t.build(ds, right, cands, h, depth+1)
	t.Nodes[me].Left = l
	t.Nodes[me].Right = r
	return me
}

func pure(ds *dataset.Dataset, idx []int) bool {
	if len(idx) <= 1 {
		return true
	}
	first := ds.Y[idx[0]]
	for _, i := range idx[1:] {
		if ds.Y[i] != first {
			return false
		}
	}
	return true
}

func (t *DecisionTree) leaf(ds *dataset.Dataset, idx []int) int {
	var value float64
	if ds.IsClassification() {
		counts := make([]int, ds.Classes)
		for _, i := range idx {
			counts[int(ds.Y[i])]++
		}
		best := 0
		for k, c := range counts {
			if c > counts[best] {
				best = k
			}
		}
		value = float64(best)
	} else {
		var sum float64
		for _, i := range idx {
			sum += ds.Y[i]
		}
		if len(idx) > 0 {
			value = sum / float64(len(idx))
		}
	}
	me := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Leaf: true, Value: value})
	return me
}

// bestSplit scans every candidate split of every feature and returns the
// one maximizing the impurity / variance gain (Eqns 5–6 of the paper).
func bestSplit(ds *dataset.Dataset, idx []int, cands [][]float64, crit Criterion) (feat int, thr float64, gain float64) {
	gain = math.Inf(-1)
	feat = -1
	scoreCrit := crit
	if crit == GainRatio {
		scoreCrit = Entropy // gain ratio normalizes the entropy gain
	}
	base := impurityScore(ds, idx, scoreCrit)
	for j := 0; j < ds.D(); j++ {
		for _, tau := range cands[j] {
			g := splitScore(ds, idx, j, tau, scoreCrit) - base
			if crit == GainRatio && ds.IsClassification() && !math.IsInf(g, -1) {
				g /= splitInfo(ds, idx, j, tau) + splitInfoEps
			}
			if g > gain {
				gain, feat, thr = g, j, tau
			}
		}
	}
	if feat < 0 {
		return -1, 0, 0
	}
	return feat, thr, gain
}

// splitInfo returns C4.5's split information −(w_l·ln w_l + w_r·ln w_r).
func splitInfo(ds *dataset.Dataset, idx []int, feat int, tau float64) float64 {
	nl := 0
	for _, i := range idx {
		if ds.X[i][feat] <= tau {
			nl++
		}
	}
	n := float64(len(idx))
	var s float64
	for _, c := range []float64{float64(nl), n - float64(nl)} {
		if c > 0 {
			w := c / n
			s -= w * math.Log(w)
		}
	}
	return s
}

// impurityScore returns a purity score — larger is purer — whose weighted
// branch sum minus node value equals the paper's gain: Σ_k p_k² for Gini,
// Σ_k p_k·ln p_k (the negated entropy) for Entropy, and (E[Y])² − E[Y²] for
// regression.
func impurityScore(ds *dataset.Dataset, idx []int, crit Criterion) float64 {
	if ds.IsClassification() {
		counts := make([]float64, ds.Classes)
		for _, i := range idx {
			counts[int(ds.Y[i])]++
		}
		n := float64(len(idx))
		var s float64
		for _, c := range counts {
			p := c / n
			if crit == Entropy {
				if p > 0 {
					s += p * math.Log(p)
				}
			} else {
				s += p * p
			}
		}
		return s
	}
	// Variance gain: maximizing Σ_branch w·(E_b[Y])² − E[Y²] terms; the
	// node-constant E[Y²] cancels in comparisons, so score = -(variance).
	var sum, sum2 float64
	for _, i := range idx {
		sum += ds.Y[i]
		sum2 += ds.Y[i] * ds.Y[i]
	}
	n := float64(len(idx))
	mean := sum / n
	return -(sum2/n - mean*mean)
}

// splitScore returns w_l·score(D_l) + w_r·score(D_r) for the split.
func splitScore(ds *dataset.Dataset, idx []int, feat int, tau float64, crit Criterion) float64 {
	var left, right []int
	for _, i := range idx {
		if ds.X[i][feat] <= tau {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return math.Inf(-1)
	}
	n := float64(len(idx))
	wl := float64(len(left)) / n
	wr := float64(len(right)) / n
	return wl*impurityScore(ds, left, crit) + wr*impurityScore(ds, right, crit)
}

// Predict returns the tree's prediction for one sample.
func (t *DecisionTree) Predict(x []float64) float64 {
	i := 0
	for !t.Nodes[i].Leaf {
		n := t.Nodes[i]
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
	return t.Nodes[i].Value
}

// PredictBatch predicts every row.
func (t *DecisionTree) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = t.Predict(x)
	}
	return out
}

// Depth returns the height of the tree (0 for a lone leaf).
func (t *DecisionTree) Depth() int {
	var walk func(i int) int
	walk = func(i int) int {
		n := t.Nodes[i]
		if n.Leaf {
			return 0
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0)
}

// InternalNodes counts non-leaf nodes (the paper's t).
func (t *DecisionTree) InternalNodes() int {
	c := 0
	for _, n := range t.Nodes {
		if !n.Leaf {
			c++
		}
	}
	return c
}

// FeatureImportance returns the normalized, sample-weighted total impurity
// decrease per feature (the standard mean-decrease-in-impurity importance),
// over d features.  All zeros if the tree is a lone leaf.
//
// This is computable for the *plaintext* baselines and for released
// basic-protocol Pivot models only in split-count form (core.SplitCounts):
// the privacy-preserving protocol never opens per-split gains.
func (t *DecisionTree) FeatureImportance(d int) []float64 {
	imp := make([]float64, d)
	var total float64
	for _, n := range t.Nodes {
		if !n.Leaf && n.Feature >= 0 && n.Feature < d {
			imp[n.Feature] += n.Gain
			total += n.Gain
		}
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}

// Accuracy computes classification accuracy on a labelled set.
func Accuracy(pred, y []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	hits := 0
	for i := range pred {
		if pred[i] == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// MSE computes mean squared error on a labelled set.
func MSE(pred, y []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - y[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// Package pivot is the public API of this reproduction of "Privacy
// Preserving Vertical Federated Learning for Tree-based Models" (Wu et al.,
// PVLDB 2020).  It wraps the protocol engine in internal/core with a small
// surface for the common flows:
//
//	ds := pivot.SyntheticClassification(1000, 12, 2, 2.0, 1)
//	cfg := pivot.DefaultConfig()
//	fed, _ := pivot.NewFederation(ds, 3, cfg)   // 3 clients, client 0 has labels
//	defer fed.Close()
//	model, _ := fed.TrainDecisionTree()
//	pred, _ := fed.Predict(model, 0)            // privacy-preserving prediction
//
// A Federation simulates the m clients of the paper's LAN deployment as
// goroutines over an in-memory transport; every protocol message, threshold
// decryption and secure computation is executed exactly as specified in the
// paper (see DESIGN.md for the substitution notes).
package pivot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/psi"
)

// Re-exported configuration and model types.
type (
	// Config collects every protocol knob (see internal/core).
	Config = core.Config
	// TreeHyper are the CART hyper-parameters.
	TreeHyper = core.TreeHyper
	// DPConfig enables differentially private training (§9.2).
	DPConfig = core.DPConfig
	// Model is a trained Pivot decision tree.
	Model = core.Model
	// ForestModel is a trained Pivot random forest (§7.1).
	ForestModel = core.ForestModel
	// BoostModel is a trained Pivot GBDT (§7.2).
	BoostModel = core.BoostModel
	// RunStats aggregates protocol statistics for a run.
	RunStats = core.RunStats
	// Dataset is a dense labelled table.
	Dataset = dataset.Dataset
	// Partition is one client's vertical slice of a Dataset.
	Partition = dataset.Partition
	// Protocol selects the basic or enhanced protocol.
	Protocol = core.Protocol
	// HideLevel selects what the enhanced protocol conceals (§5.2).
	HideLevel = core.HideLevel
	// SplitCriterion selects gini or entropy classification gains.
	SplitCriterion = core.SplitCriterion
	// TrainMode selects the level-wise batched pipeline or the paper's
	// per-node recursion.
	TrainMode = core.TrainMode
)

// Protocol values.
const (
	Basic    = core.Basic
	Enhanced = core.Enhanced
)

// Hide levels for the enhanced protocol (each extends the previous).
const (
	HideThreshold = core.HideThreshold
	HideFeature   = core.HideFeature
	HideClient    = core.HideClient
)

// Split criteria.
const (
	Gini      = core.Gini
	Entropy   = core.Entropy
	GainRatio = core.GainRatio
)

// Training pipelines.
const (
	LevelWise = core.LevelWise
	PerNode   = core.PerNode
)

// DefaultConfig returns the paper's protocol parameters at laptop scale.
func DefaultConfig() Config { return core.DefaultConfig() }

// Dataset constructors (stand-ins for the paper's evaluation data).
var (
	SyntheticClassification = dataset.SyntheticClassification
	SyntheticRegression     = dataset.SyntheticRegression
	BankMarketing           = dataset.BankMarketing
	CreditCard              = dataset.CreditCard
	AppliancesEnergy        = dataset.AppliancesEnergy
	Split                   = dataset.Split
	LoadCSVFile             = dataset.LoadCSVFile
	SaveCSVFile             = dataset.SaveCSVFile
	VerticalPartition       = dataset.VerticalPartition
)

// Federation is a live m-client session: data vertically partitioned,
// threshold keys dealt, clients connected.
type Federation struct {
	session *Session
	parts   []*Partition
}

// Session is the lower-level SPMD session (advanced use).
type Session = core.Session

// NewFederation vertically partitions ds across m clients (labels at
// client 0, the super client) and brings the federation up.
func NewFederation(ds *Dataset, m int, cfg Config) (*Federation, error) {
	parts, err := dataset.VerticalPartition(ds, m, 0)
	if err != nil {
		return nil, err
	}
	return NewFederationFromPartitions(parts, cfg)
}

// NewFederationFromPartitions starts a federation over pre-built vertical
// partitions (e.g. loaded from per-client CSV files).
func NewFederationFromPartitions(parts []*Partition, cfg Config) (*Federation, error) {
	s, err := core.NewSession(parts, cfg)
	if err != nil {
		return nil, err
	}
	return &Federation{session: s, parts: parts}, nil
}

// PSIGroup is the algebraic group the private-set-intersection alignment
// runs in (see internal/psi).
type PSIGroup = psi.Group

// PSI group constructors: DefaultPSIGroup is the 1024-bit production group,
// TestPSIGroup the fast 512-bit group for tests and demos.
var (
	DefaultPSIGroup = psi.DefaultGroup
	TestPSIGroup    = psi.TestGroup
)

// NewAlignedFederation performs the paper's initialization stage (§3.1) and
// then brings the federation up: the m clients hold partitions whose rows
// are keyed by ids[c] (arbitrary order, possibly different subsets of
// users), run the DDH-based private set intersection protocol to find their
// common samples without revealing ids outside the intersection, restrict
// and reorder their local rows to the agreed order, and start the session.
// The returned id list is the aligned sample order shared by all clients.
func NewAlignedFederation(parts []*Partition, ids [][]string, g *PSIGroup, cfg Config) (*Federation, []string, error) {
	if len(parts) != len(ids) {
		return nil, nil, fmt.Errorf("pivot: %d partitions but %d id lists", len(parts), len(ids))
	}
	for c, p := range parts {
		if len(ids[c]) != len(p.X) {
			return nil, nil, fmt.Errorf("pivot: client %d has %d rows but %d ids", c, len(p.X), len(ids[c]))
		}
	}
	if g == nil {
		g = psi.DefaultGroup()
	}
	common, rows, err := psi.AlignAll(g, ids)
	if err != nil {
		return nil, nil, err
	}
	if len(common) == 0 {
		return nil, nil, fmt.Errorf("pivot: the clients share no common samples")
	}
	aligned := make([]*Partition, len(parts))
	for c, p := range parts {
		ap, err := p.SelectRows(rows[c])
		if err != nil {
			return nil, nil, fmt.Errorf("pivot: client %d alignment: %w", c, err)
		}
		aligned[c] = ap
	}
	fed, err := NewFederationFromPartitions(aligned, cfg)
	if err != nil {
		return nil, nil, err
	}
	return fed, common, nil
}

// Close tears the federation down.
func (f *Federation) Close() { f.session.Close() }

// Parts returns the vertical partitions (client i's view of the data).
func (f *Federation) Parts() []*Partition { return f.parts }

// Stats returns aggregated protocol statistics across all clients.
func (f *Federation) Stats() RunStats { return f.session.Stats() }

// Session exposes the SPMD session for advanced orchestration.
func (f *Federation) Session() *Session { return f.session }

// TrainDecisionTree trains one Pivot decision tree (Algorithm 3; the
// protocol — basic or enhanced — comes from the federation config).
func (f *Federation) TrainDecisionTree() (*Model, error) {
	models := make([]*Model, len(f.parts))
	err := f.session.Each(func(p *core.Party) error {
		m, err := p.TrainDT()
		if err == nil {
			models[p.ID] = m
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return models[0], nil
}

// TrainRandomForest trains a Pivot-RF ensemble (§7.1).
func (f *Federation) TrainRandomForest() (*ForestModel, error) {
	models := make([]*ForestModel, len(f.parts))
	err := f.session.Each(func(p *core.Party) error {
		m, err := p.TrainRF()
		if err == nil {
			models[p.ID] = m
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return models[0], nil
}

// TrainGBDT trains a Pivot-GBDT ensemble (§7.2).
func (f *Federation) TrainGBDT() (*BoostModel, error) {
	models := make([]*BoostModel, len(f.parts))
	err := f.session.Each(func(p *core.Party) error {
		m, err := p.TrainGBDT()
		if err == nil {
			models[p.ID] = m
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return models[0], nil
}

// Predict runs the privacy-preserving prediction protocol for training
// sample index i (round-robin under the basic protocol, secret-shared under
// the enhanced protocol).
func (f *Federation) Predict(model *Model, i int) (float64, error) {
	return f.predictAt(i, func(p *core.Party, x []float64) (float64, error) {
		return p.Predict(model, x)
	})
}

// PredictSample predicts an out-of-training sample whose features are
// already split per client (featuresByClient[c] is client c's columns).
func (f *Federation) PredictSample(model *Model, featuresByClient [][]float64) (float64, error) {
	if len(featuresByClient) != len(f.parts) {
		return 0, fmt.Errorf("pivot: sample has %d client slices, federation has %d", len(featuresByClient), len(f.parts))
	}
	var out float64
	err := f.session.Each(func(p *core.Party) error {
		v, err := p.Predict(model, featuresByClient[p.ID])
		if p.ID == 0 && err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// PredictDataset evaluates the model on every sample of the federation's
// partitions through the batched prediction pipeline: one MPC round chain
// per Config.PredictBatch samples (0 = the whole dataset in one batch)
// instead of one per sample.  Malicious mode falls back to the audited
// per-sample protocol.
func (f *Federation) PredictDataset(model *Model) ([]float64, error) {
	return core.PredictDataset(f.session, model, f.parts)
}

// PredictForestDataset evaluates a Pivot-RF on every sample, batching
// across samples and trees.
func (f *Federation) PredictForestDataset(fm *ForestModel) ([]float64, error) {
	return core.PredictDatasetForest(f.session, fm, f.parts)
}

// PredictBoostDataset evaluates a Pivot-GBDT on every sample, batching
// across samples and all class forests' trees.
func (f *Federation) PredictBoostDataset(bm *BoostModel) ([]float64, error) {
	return core.PredictDatasetBoost(f.session, bm, f.parts)
}

// PredictForest votes the Pivot-RF prediction for training sample i.
func (f *Federation) PredictForest(fm *ForestModel, i int) (float64, error) {
	return f.predictAt(i, func(p *core.Party, x []float64) (float64, error) {
		return p.PredictRF(fm, x)
	})
}

// PredictBoost computes the Pivot-GBDT prediction for training sample i.
func (f *Federation) PredictBoost(bm *BoostModel, i int) (float64, error) {
	return f.predictAt(i, func(p *core.Party, x []float64) (float64, error) {
		return p.PredictGBDT(bm, x)
	})
}

func (f *Federation) predictAt(i int, fn func(*core.Party, []float64) (float64, error)) (float64, error) {
	if i < 0 || i >= f.parts[0].N {
		return 0, fmt.Errorf("pivot: sample index %d out of range", i)
	}
	var out float64
	err := f.session.Each(func(p *core.Party) error {
		v, err := fn(p, f.parts[p.ID].X[i])
		if p.ID == 0 && err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// LRModel is the §7.3 vertical logistic regression model.
type LRModel = core.LRModel

// LRConfig are the logistic regression hyper-parameters.
type LRConfig = core.LRConfig

// TrainLogisticRegression trains the §7.3 vertical logistic regression
// extension (binary labels) over the federation.
func (f *Federation) TrainLogisticRegression(cfg LRConfig) (*LRModel, error) {
	models := make([]*LRModel, len(f.parts))
	err := f.session.Each(func(p *core.Party) error {
		m, err := p.TrainLR(cfg)
		if err == nil {
			models[p.ID] = m
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return models[0], nil
}

// Package pivot is the public API of this reproduction of "Privacy
// Preserving Vertical Federated Learning for Tree-based Models" (Wu et al.,
// PVLDB 2020).  It wraps the protocol engine in internal/core with a small
// surface for the common flows:
//
//	ds := pivot.SyntheticClassification(1000, 12, 2, 2.0, 1)
//	cfg := pivot.DefaultConfig()
//	fed, _ := pivot.NewFederation(ds, 3, cfg)   // 3 clients, client 0 has labels
//	defer fed.Close()
//	mdl, _ := fed.Train(pivot.TrainSpec{Model: pivot.KindDT})
//	preds, _ := fed.PredictAll(mdl)             // privacy-preserving prediction
//
// Train returns a Predictor; TrainSpec{Model: KindRF} / {Model: KindGBDT}
// train the §7 ensembles through the same call, and PredictOne /
// PredictAt / PredictAll evaluate any Predictor.  For a deployment that
// keeps answering queries after training, cmd/pivot-serve runs a
// long-lived daemon (internal/serve) reachable with pivot.Dial.
//
// A Federation simulates the m clients of the paper's LAN deployment as
// goroutines over an in-memory transport; every protocol message, threshold
// decryption and secure computation is executed exactly as specified in the
// paper (see DESIGN.md for the substitution notes).
package pivot

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/psi"
	"repro/internal/serve"
	"repro/internal/transport"
)

// Re-exported configuration and model types.
type (
	// Config collects every protocol knob (see internal/core).
	Config = core.Config
	// TreeHyper are the CART hyper-parameters.
	TreeHyper = core.TreeHyper
	// DPConfig enables differentially private training (§9.2).
	DPConfig = core.DPConfig
	// Model is a trained Pivot decision tree.
	Model = core.Model
	// ForestModel is a trained Pivot random forest (§7.1).
	ForestModel = core.ForestModel
	// BoostModel is a trained Pivot GBDT (§7.2).
	BoostModel = core.BoostModel
	// RunStats aggregates protocol statistics for a run.
	RunStats = core.RunStats
	// Dataset is a dense labelled table.
	Dataset = dataset.Dataset
	// Partition is one client's vertical slice of a Dataset.
	Partition = dataset.Partition
	// Protocol selects the basic or enhanced protocol.
	Protocol = core.Protocol
	// HideLevel selects what the enhanced protocol conceals (§5.2).
	HideLevel = core.HideLevel
	// SplitCriterion selects gini or entropy classification gains.
	SplitCriterion = core.SplitCriterion
	// TrainMode selects the level-wise batched pipeline or the paper's
	// per-node recursion.
	TrainMode = core.TrainMode
	// Predictor is any trained model a federation can evaluate: *Model,
	// *ForestModel and *BoostModel all satisfy it.  PredictOne /
	// PredictAt / PredictAll replace the per-type Predict* zoo.
	Predictor = core.Predictor
	// Trainer describes a training flow for Federation.Train; TrainSpec
	// is the standard implementation.
	Trainer = core.Trainer
	// TrainSpec selects the model family to train (hyper-parameters come
	// from the federation Config).
	TrainSpec = core.TrainSpec
	// ModelKind tags the trained model families ("dt", "rf", "gbdt").
	ModelKind = core.ModelKind
)

// Model kinds for TrainSpec and Predictor.Kind.
const (
	KindDT   = core.KindDT
	KindRF   = core.KindRF
	KindGBDT = core.KindGBDT
)

// Protocol values.
const (
	Basic    = core.Basic
	Enhanced = core.Enhanced
)

// Hide levels for the enhanced protocol (each extends the previous).
const (
	HideThreshold = core.HideThreshold
	HideFeature   = core.HideFeature
	HideClient    = core.HideClient
)

// Split criteria.
const (
	Gini      = core.Gini
	Entropy   = core.Entropy
	GainRatio = core.GainRatio
)

// Training pipelines.
const (
	LevelWise = core.LevelWise
	PerNode   = core.PerNode
)

// DefaultConfig returns the paper's protocol parameters at laptop scale.
func DefaultConfig() Config { return core.DefaultConfig() }

// Dataset constructors (stand-ins for the paper's evaluation data).
var (
	SyntheticClassification = dataset.SyntheticClassification
	SyntheticRegression     = dataset.SyntheticRegression
	BankMarketing           = dataset.BankMarketing
	CreditCard              = dataset.CreditCard
	AppliancesEnergy        = dataset.AppliancesEnergy
	Split                   = dataset.Split
	LoadCSVFile             = dataset.LoadCSVFile
	SaveCSVFile             = dataset.SaveCSVFile
	VerticalPartition       = dataset.VerticalPartition
)

// Federation is a live m-client session: data vertically partitioned,
// threshold keys dealt, clients connected.
type Federation struct {
	session *Session
	parts   []*Partition
}

// Session is the lower-level SPMD session (advanced use).
type Session = core.Session

// NewFederation vertically partitions ds across m clients (labels at
// client 0, the super client) and brings the federation up.
func NewFederation(ds *Dataset, m int, cfg Config) (*Federation, error) {
	parts, err := dataset.VerticalPartition(ds, m, 0)
	if err != nil {
		return nil, err
	}
	return NewFederationFromPartitions(parts, cfg)
}

// NewFederationFromPartitions starts a federation over pre-built vertical
// partitions (e.g. loaded from per-client CSV files).
func NewFederationFromPartitions(parts []*Partition, cfg Config) (*Federation, error) {
	s, err := core.NewSession(parts, cfg)
	if err != nil {
		return nil, err
	}
	return &Federation{session: s, parts: parts}, nil
}

// PSIGroup is the algebraic group the private-set-intersection alignment
// runs in (see internal/psi).
type PSIGroup = psi.Group

// PSI group constructors: DefaultPSIGroup is the 1024-bit production group,
// TestPSIGroup the fast 512-bit group for tests and demos.
var (
	DefaultPSIGroup = psi.DefaultGroup
	TestPSIGroup    = psi.TestGroup
)

// NewAlignedFederation performs the paper's initialization stage (§3.1) and
// then brings the federation up: the m clients hold partitions whose rows
// are keyed by ids[c] (arbitrary order, possibly different subsets of
// users), run the DDH-based private set intersection protocol to find their
// common samples without revealing ids outside the intersection, restrict
// and reorder their local rows to the agreed order, and start the session.
// The returned id list is the aligned sample order shared by all clients.
func NewAlignedFederation(parts []*Partition, ids [][]string, g *PSIGroup, cfg Config) (*Federation, []string, error) {
	if len(parts) != len(ids) {
		return nil, nil, fmt.Errorf("pivot: %d partitions but %d id lists", len(parts), len(ids))
	}
	for c, p := range parts {
		if len(ids[c]) != len(p.X) {
			return nil, nil, fmt.Errorf("pivot: client %d has %d rows but %d ids", c, len(p.X), len(ids[c]))
		}
	}
	if g == nil {
		g = psi.DefaultGroup()
	}
	common, rows, err := psi.AlignAll(g, ids)
	if err != nil {
		return nil, nil, err
	}
	if len(common) == 0 {
		return nil, nil, fmt.Errorf("pivot: the clients share no common samples")
	}
	aligned := make([]*Partition, len(parts))
	for c, p := range parts {
		ap, err := p.SelectRows(rows[c])
		if err != nil {
			return nil, nil, fmt.Errorf("pivot: client %d alignment: %w", c, err)
		}
		aligned[c] = ap
	}
	fed, err := NewFederationFromPartitions(aligned, cfg)
	if err != nil {
		return nil, nil, err
	}
	return fed, common, nil
}

// Close tears the federation down.  It is idempotent and safe under
// concurrent callers: the first caller performs the teardown (after any
// in-flight protocol phase completes), the rest block until it is done.
func (f *Federation) Close() { f.session.Close() }

// Parts returns the vertical partitions (client i's view of the data).
func (f *Federation) Parts() []*Partition { return f.parts }

// Stats returns aggregated protocol statistics across all clients.
func (f *Federation) Stats() RunStats { return f.session.Stats() }

// Session exposes the SPMD session for advanced orchestration.
func (f *Federation) Session() *Session { return f.session }

// Train runs t's training flow over the federation and returns the
// trained model as a Predictor.  TrainSpec is the standard Trainer:
//
//	mdl, err := fed.Train(pivot.TrainSpec{Model: pivot.KindRF})
//	preds, err := fed.PredictAll(mdl)
//
// Type-assert the result (*pivot.Model, *pivot.ForestModel,
// *pivot.BoostModel) when the concrete type is needed (Save, rendering).
func (f *Federation) Train(t Trainer) (Predictor, error) {
	return core.Train(f.session, t)
}

// PredictOne runs the privacy-preserving prediction protocol for one
// out-of-training sample whose features are already split per client
// (featuresByClient[c] is client c's columns), for any model family.
func (f *Federation) PredictOne(mdl Predictor, featuresByClient [][]float64) (float64, error) {
	if len(featuresByClient) != len(f.parts) {
		return 0, fmt.Errorf("pivot: sample has %d client slices, federation has %d", len(featuresByClient), len(f.parts))
	}
	return core.PredictOne(f.session, mdl, featuresByClient)
}

// PredictAt runs the prediction protocol for training sample index i, for
// any model family (round-robin under the basic protocol, secret-shared
// under the enhanced protocol).
func (f *Federation) PredictAt(mdl Predictor, i int) (float64, error) {
	if i < 0 || i >= f.parts[0].N {
		return 0, fmt.Errorf("pivot: sample index %d out of range", i)
	}
	by := make([][]float64, len(f.parts))
	for c, p := range f.parts {
		by[c] = p.X[i]
	}
	return core.PredictOne(f.session, mdl, by)
}

// PredictAll evaluates any model on every sample of the federation's
// partitions through the batched prediction pipeline: one MPC round chain
// per Config.PredictBatch samples (0 = the whole dataset in one batch)
// instead of one per sample.  Malicious mode falls back to the audited
// per-sample protocol.
func (f *Federation) PredictAll(mdl Predictor) ([]float64, error) {
	return core.PredictAll(f.session, mdl, f.parts)
}

// Update absorbs a batch of appended aligned samples (global column
// order, labels included) into a trained model without a full retrain:
// the clients extend their vertical partitions with the new rows, the
// released trees are replayed over the union with zero MPC rounds, and
// only the leaf refinement (DT/RF) or the addTrees extra boosting rounds
// (GBDT; <= 0 selects 1) run secure computation.  The absorbed rows also
// join the federation's partitions, so PredictAll and later absorbs see
// the union.  Basic protocol only: a warm start replays released
// plaintext trees, which the enhanced protocol never discloses.
func (f *Federation) Update(mdl Predictor, appended *Dataset, addTrees int) (Predictor, error) {
	if appended == nil || appended.N() == 0 {
		return nil, fmt.Errorf("pivot: update carries no samples")
	}
	width := 0
	for _, p := range f.parts {
		width += len(p.Features)
	}
	if appended.D() != width {
		return nil, fmt.Errorf("pivot: appended samples have %d features, federation has %d", appended.D(), width)
	}
	if len(appended.Y) != appended.N() {
		return nil, fmt.Errorf("pivot: %d appended samples but %d labels", appended.N(), len(appended.Y))
	}
	ap := make([]*Partition, len(f.parts))
	for c, p := range f.parts {
		np := &Partition{
			Client:   p.Client,
			Features: p.Features,
			Classes:  p.Classes,
			N:        appended.N(),
			X:        make([][]float64, appended.N()),
			// Labels ride every slice; only the super client reads them.
			Y: append([]float64(nil), appended.Y...),
		}
		for t, row := range appended.X {
			local := make([]float64, len(p.Features))
			for j, g := range p.Features {
				local[j] = row[g]
			}
			np.X[t] = local
		}
		ap[c] = np
	}
	out, err := core.Update(f.session, core.UpdateSpec{Model: mdl, Append: ap, AddTrees: addTrees})
	if err != nil {
		return nil, err
	}
	// Grow the federation's own view copy-on-append too: the original
	// partition structs may still back other sessions or callers.
	for c, p := range f.parts {
		merged := &Partition{
			Client:   p.Client,
			Features: p.Features,
			Classes:  p.Classes,
			N:        p.N + ap[c].N,
			X:        append(append(make([][]float64, 0, p.N+ap[c].N), p.X...), ap[c].X...),
		}
		if p.Y != nil {
			merged.Y = append(append(make([]float64, 0, merged.N), p.Y...), appended.Y...)
		}
		f.parts[c] = merged
	}
	return out, nil
}

// TrainDecisionTree trains one Pivot decision tree (Algorithm 3; the
// protocol — basic or enhanced — comes from the federation config).
//
// Deprecated: use Train(TrainSpec{Model: KindDT}).
func (f *Federation) TrainDecisionTree() (*Model, error) {
	mdl, err := f.Train(TrainSpec{Model: KindDT})
	if err != nil {
		return nil, err
	}
	return mdl.(*Model), nil
}

// TrainRandomForest trains a Pivot-RF ensemble (§7.1).
//
// Deprecated: use Train(TrainSpec{Model: KindRF}).
func (f *Federation) TrainRandomForest() (*ForestModel, error) {
	mdl, err := f.Train(TrainSpec{Model: KindRF})
	if err != nil {
		return nil, err
	}
	return mdl.(*ForestModel), nil
}

// TrainGBDT trains a Pivot-GBDT ensemble (§7.2).
//
// Deprecated: use Train(TrainSpec{Model: KindGBDT}).
func (f *Federation) TrainGBDT() (*BoostModel, error) {
	mdl, err := f.Train(TrainSpec{Model: KindGBDT})
	if err != nil {
		return nil, err
	}
	return mdl.(*BoostModel), nil
}

// Predict runs the prediction protocol for training sample index i.
//
// Deprecated: use PredictAt — it serves every model family.
func (f *Federation) Predict(model *Model, i int) (float64, error) {
	return f.PredictAt(model, i)
}

// PredictSample predicts an out-of-training sample whose features are
// already split per client.
//
// Deprecated: use PredictOne — it serves every model family.
func (f *Federation) PredictSample(model *Model, featuresByClient [][]float64) (float64, error) {
	return f.PredictOne(model, featuresByClient)
}

// PredictDataset evaluates the model on every sample.
//
// Deprecated: use PredictAll — it serves every model family.
func (f *Federation) PredictDataset(model *Model) ([]float64, error) {
	return f.PredictAll(model)
}

// PredictForestDataset evaluates a Pivot-RF on every sample.
//
// Deprecated: use PredictAll — it serves every model family.
func (f *Federation) PredictForestDataset(fm *ForestModel) ([]float64, error) {
	return f.PredictAll(fm)
}

// PredictBoostDataset evaluates a Pivot-GBDT on every sample.
//
// Deprecated: use PredictAll — it serves every model family.
func (f *Federation) PredictBoostDataset(bm *BoostModel) ([]float64, error) {
	return f.PredictAll(bm)
}

// PredictForest votes the Pivot-RF prediction for training sample i.
//
// Deprecated: use PredictAt — it serves every model family.
func (f *Federation) PredictForest(fm *ForestModel, i int) (float64, error) {
	return f.PredictAt(fm, i)
}

// PredictBoost computes the Pivot-GBDT prediction for training sample i.
//
// Deprecated: use PredictAt — it serves every model family.
func (f *Federation) PredictBoost(bm *BoostModel, i int) (float64, error) {
	return f.PredictAt(bm, i)
}

// ---------------------------------------------------------------------------
// Serving (see internal/serve and cmd/pivot-serve)

// ServeClient is a connection to a running pivot-serve daemon.
type ServeClient = serve.Client

// ServeModelInfo describes one entry of a daemon's model registry.
type ServeModelInfo = serve.Info

// Dial connects to a pivot-serve prediction daemon:
//
//	cli, err := pivot.Dial("127.0.0.1:9100")
//	preds, err := cli.Predict("dt", samples)   // rows in global column order
//
// A client serializes its own requests; open several clients for
// concurrent load — the daemon coalesces their samples into shared MPC
// round chains.  Refused connections are retried with a capped
// full-jitter backoff for up to 5 seconds, riding out daemon restarts;
// DialTimeout tunes that window.
func Dial(addr string) (*ServeClient, error) { return serve.Dial(addr) }

// DialTimeout is Dial with an explicit connection-retry window
// (timeout <= 0 attempts exactly once).
func DialTimeout(addr string, timeout time.Duration) (*ServeClient, error) {
	return serve.DialTimeout(addr, timeout)
}

// ServeDialOptions tunes Dial: TLS on the wire, the daemon's shared auth
// token, and the connect retry window.
type ServeDialOptions = serve.DialOptions

// DialOpts is Dial with transport security, matching a daemon started
// with -tls-cert/-tls-key and/or -auth:
//
//	tlsCfg, _ := pivot.LoadClientTLS("ca.pem", "", false)
//	cli, _ := pivot.DialOpts(addr, pivot.ServeDialOptions{TLS: tlsCfg, AuthToken: tok})
func DialOpts(addr string, opts ServeDialOptions) (*ServeClient, error) {
	return serve.DialOpts(addr, opts)
}

// TLS config builders for the serving wire (see internal/transport):
// LoadServerTLS reads a PEM cert/key pair for the daemon, LoadClientTLS
// builds the client side (custom CA bundle, server-name override, or
// insecure test mode), and SelfSignedTLS mints an ephemeral matched
// server/client pair for tests and loopback rigs.
var (
	LoadServerTLS = transport.LoadServerTLS
	LoadClientTLS = transport.LoadClientTLS
	SelfSignedTLS = transport.SelfSignedTLS
)

// ErrServeUnavailable matches (errors.Is) predictions a daemon refused
// because its serving session died and is being rebuilt; the concrete
// *serve.UnavailableError carries a RetryAfter back-off hint.
var ErrServeUnavailable = serve.ErrUnavailable

// LRModel is the §7.3 vertical logistic regression model.
type LRModel = core.LRModel

// LRConfig are the logistic regression hyper-parameters.
type LRConfig = core.LRConfig

// TrainLogisticRegression trains the §7.3 vertical logistic regression
// extension (binary labels) over the federation.
func (f *Federation) TrainLogisticRegression(cfg LRConfig) (*LRModel, error) {
	models := make([]*LRModel, len(f.parts))
	err := f.session.Each(func(p *core.Party) error {
		m, err := p.TrainLR(cfg)
		if err == nil {
			models[p.ID] = m
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return models[0], nil
}

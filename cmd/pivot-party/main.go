// pivot-party runs ONE participant of a Pivot federation as its own process
// over TCP — the deployment shape of the paper's LAN testbed.  Start m+1
// processes: ids 0..m-1 are the clients (id 0 is the super client and must
// have the labels in its CSV), id m is the offline-phase dealer.
//
// Each client holds only its own vertical slice: a CSV whose columns are its
// features, plus a `label` column at the super client (other clients use a
// dummy label column of zeros, which is ignored).
//
// Example (3 clients + dealer, four terminals):
//
//	pivot-party -role dealer -id 3 -addrs $A
//	pivot-party -id 2 -data c2.csv            -addrs $A
//	pivot-party -id 1 -data c1.csv            -addrs $A
//	pivot-party -id 0 -data c0.csv -classes 2 -addrs $A
//
// with A="h0:9000,h1:9001,h2:9002,h3:9003".
//
// Key setup: client 0 generates the threshold key material and distributes
// the partial keys at startup (a stand-in for the paper's DKG ceremony —
// see DESIGN.md "Substitutions"; do not use as-is in production).
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"math/big"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mpc"
	"repro/internal/paillier"
	"repro/internal/transport"
)

func main() {
	role := flag.String("role", "client", "client | dealer")
	id := flag.Int("id", 0, "party index (dealer uses the last index)")
	addrs := flag.String("addrs", "", "comma-separated listen addresses for ALL parties incl. dealer")
	dataPath := flag.String("data", "", "this client's vertical slice (CSV)")
	classes := flag.Int("classes", 0, "number of classes (0 = regression); super client only")
	depth := flag.Int("depth", 4, "max tree depth")
	splits := flag.Int("splits", 8, "max splits per feature")
	keyBits := flag.Int("keybits", 512, "threshold Paillier key size")
	protocol := flag.String("protocol", "basic", "basic | enhanced")
	seed := flag.Int64("seed", 7, "shared protocol seed (must match across parties)")
	out := flag.String("out", "model.json", "model output (client 0)")
	compress := flag.Bool("compress", false, "flate-compress wire frames (all parties must agree; helps structured frames only — ciphertexts are incompressible)")
	sendQueue := flag.Int64("sendqueue", 0, "per-peer send-queue high-water mark in bytes (0 = default)")
	reconnect := flag.Bool("reconnect", false, "run every peer wire over the reliable transport: sequence-numbered acknowledged frames, automatic redial and resume after a dropped link (all parties must agree)")
	heartbeat := flag.Duration("heartbeat", 0, "keepalive interval for -reconnect wires; a peer missing 3 beats is redialed (0 = no heartbeats)")
	resumeTimeout := flag.Duration("resume-timeout", 0, "how long a broken -reconnect wire keeps redialing before failing terminally (0 = 10s default)")
	dialTimeout := flag.Duration("dial-timeout", 0, "per-peer dial bound during mesh bring-up and redials (0 = 15s default)")
	flag.Parse()

	addrList := strings.Split(*addrs, ",")
	if len(addrList) < 3 {
		fail(fmt.Errorf("need at least 2 clients + 1 dealer in -addrs"))
	}
	m := len(addrList) - 1

	ep, err := transport.NewTCPEndpoint(transport.TCPConfig{
		Addrs:          addrList,
		Compress:       *compress,
		SendQueueBytes: *sendQueue,
		Reconnect:      *reconnect,
		Heartbeat:      *heartbeat,
		ResumeTimeout:  *resumeTimeout,
		DialTimeout:    *dialTimeout,
	}, *id)
	if err != nil {
		fail(err)
	}
	defer ep.Close()

	if *role == "dealer" {
		fmt.Printf("dealer up on %s, serving %d clients\n", addrList[*id], m)
		if err := mpc.RunDealer(ep, mpc.DealerConfig{Seed: *seed}); err != nil {
			fail(err)
		}
		return
	}

	// Key distribution: client 0 deals the threshold keys (see file docs)
	// and announces the public class count, which every client needs — the
	// per-node protocols branch on classification vs regression, so a
	// diverging local value would desynchronize the conversion step.
	var pk *paillier.PublicKey
	var myKey *paillier.PartialKey
	if *id == 0 {
		var keys []*paillier.PartialKey
		pk, _, keys, err = paillier.KeyGen(rand.Reader, *keyBits, m)
		if err != nil {
			fail(err)
		}
		myKey = keys[0]
		for c := 1; c < m; c++ {
			// The integer share of the threshold exponent is bigger than N
			// (it carries 80 bits of statistical masking) and may be
			// negative, so it travels as sign + magnitude — a ring encoding
			// mod N would destroy it.
			share := keys[c].DShare
			sign := big.NewInt(0)
			if share.Sign() < 0 {
				sign.SetInt64(1)
			}
			msg := []*big.Int{pk.N, new(big.Int).Abs(share), sign, big.NewInt(int64(*classes))}
			if err := transport.SendInts(ep, c, msg); err != nil {
				fail(err)
			}
		}
	} else {
		xs, err := transport.RecvInts(ep, 0)
		if err != nil {
			fail(err)
		}
		if len(xs) != 4 {
			fail(fmt.Errorf("malformed key material from client 0"))
		}
		pk = &paillier.PublicKey{N: xs[0], N2: new(big.Int).Mul(xs[0], xs[0])}
		share := xs[1]
		if xs[2].Sign() != 0 {
			share = share.Neg(share)
		}
		myKey = &paillier.PartialKey{Index: *id, DShare: share}
		*classes = int(xs[3].Int64())
	}

	ds, err := dataset.LoadCSVFile(*dataPath, *classes)
	if err != nil {
		fail(err)
	}
	part := &dataset.Partition{
		Client: *id, N: ds.N(), Classes: *classes, X: ds.X,
		Features: identity(ds.D()),
	}
	if *id == 0 {
		part.Y = ds.Y
	}

	cfg := core.DefaultConfig()
	cfg.KeyBits = *keyBits
	cfg.Seed = *seed
	cfg.Tree = core.TreeHyper{MaxDepth: *depth, MaxSplits: *splits, MinSamplesSplit: 2, LeafOnZeroGain: true}
	if *protocol == "enhanced" {
		cfg.Protocol = core.Enhanced
	}

	// Standalone parties own their key copy, so each enables its own
	// randomness pool (in-process sessions share one via core.NewSession).
	if cfg.PoolCapacity >= 0 {
		if _, err := pk.EnablePool(paillier.PoolConfig{Workers: cfg.PoolWorkers, Capacity: cfg.PoolCapacity}); err != nil {
			fail(err)
		}
		defer pk.DisablePool()
	}

	p, err := core.NewParty(ep, part, pk, myKey, m, cfg)
	if err != nil {
		fail(err)
	}
	model, err := p.TrainDT()
	if err != nil {
		fail(err)
	}
	p.Close()
	fmt.Printf("client %d: trained tree with %d internal nodes\n", *id, model.InternalNodes())
	if *id == 0 {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := model.Save(f); err != nil {
			fail(err)
		}
		fmt.Printf("client 0: wrote %s\n", *out)
	}
}

func identity(d int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = i
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pivot-party:", err)
	os.Exit(1)
}

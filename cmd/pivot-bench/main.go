// pivot-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pivot-bench -exp fig4a                 # one experiment, quick preset
//	pivot-bench -exp all                   # everything, quick preset
//	pivot-bench -exp fig5b -preset paper   # the paper's parameters (slow!)
//	pivot-bench -exp paillier -json BENCH_paillier.json   # perf baseline
//	pivot-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

// writers produce the machine-readable BENCH_*.json baselines (-json).
// Each returns a one-line summary for the log; experiments without a
// writer have no baseline format, so -json on them is an error instead of
// a silently ignored flag.
var writers = map[string]func(path string, p experiments.Preset) (string, error){
	"paillier": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WritePaillierBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("enc speedup %.2fx, train speedup %.2fx", st.EncSpeedup, st.TrainSpeedup), nil
	},
	"levelwise": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WriteLevelwiseBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("rounds %d -> %d, %.2fx; trees identical: %v",
			st.PerNodeRounds, st.LevelwiseRounds, st.RoundReduction, st.TreesIdentical), nil
	},
	"predict": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WritePredictBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("rounds %d -> %d, %.2fx; msgs %.2fx; WAN wall %.2fx; identical: %v",
			st.PerSampleRounds, st.BatchRounds, st.RoundReduction,
			st.MsgReduction, st.WANSpeedup, st.PredictionsIdentical), nil
	},
	"serve": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WriteServeBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("micro-batch speedup %.2fx at %gms WAN; identical: %v",
			st.MicroBatchSpeedup, st.NetDelayMs, st.ResultsIdentical), nil
	},
	"servescale": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WriteServeScaleBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("S=%d scaling %.2fx at %gms WAN; lane batch %d = %d rounds / %d msgs; kill: ok=%d unavail=%d other=%d requeued=%d; identical: %v",
			st.Points[len(st.Points)-1].Lanes, st.ScalingX, st.NetDelayMs,
			st.LaneBatch, st.LaneRoundsPerBatch, st.LaneMsgsPerBatch,
			st.Kill.Succeeded, st.Kill.Unavailable, st.Kill.FailedOther, st.Kill.Requeued,
			st.ResultsIdentical), nil
	},
	"update": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WriteUpdateBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("GBDT rounds %d -> %d, %.2fx; enhanced update rounds %d -> %d, %.2fx; trees identical: %v",
			st.SeqRounds, st.BatchRounds, st.RoundReduction,
			st.EnhSeqUpdateRounds, st.EnhBatchUpdateRounds, st.EnhUpdateReduction,
			st.TreesIdentical), nil
	},
	"pipeline": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WritePipelineBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		for i, leg := range st.Legs {
			if i > 0 {
				sb.WriteString("; ")
			}
			fmt.Fprintf(&sb, "leg %gms %.2fs -> %.2fs (%.2fx, in-flight peak %d, identical: %v)",
				leg.DelayMs, leg.BarrierSeconds, leg.PipelinedSeconds, leg.WallSpeedup,
				leg.InFlightPeak, leg.TreesIdentical)
		}
		return sb.String(), nil
	},
	"recovery": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WriteRecoveryBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("crash at level %d: resume %d rounds vs retrain %d, %.2fx wall; model match: %v",
			st.CrashLevel, st.ResumeRounds, st.RetrainRounds, st.ResumeSpeedup, st.ModelMatch), nil
	},
	"incremental": func(path string, p experiments.Preset) (string, error) {
		st, err := experiments.WriteIncrementalBenchJSON(path, p)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("absorb +%d samples: DT %d rounds vs retrain %d (%.1fx); GBDT %d vs %d (%.1fx); accuracy deltas %.4f / %.4f",
			st.AppendN, st.AbsorbRounds, st.RetrainRounds, st.RoundReduction,
			st.GBDTAbsorbRounds, st.GBDTRetrainRounds, st.GBDTRoundReduction,
			st.AccuracyDelta, st.GBDTAccuracyDelta), nil
	},
}

// experimentIDs lists every registered experiment, sorted.
func experimentIDs() []string {
	ids := make([]string, 0, len(experiments.Drivers))
	for id := range experiments.Drivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	preset := flag.String("preset", "quick", "quick | paper")
	list := flag.Bool("list", false, "list experiment ids")
	jsonOut := flag.String("json", "", "write the experiment's machine-readable perf baseline (BENCH_*.json) to this file; only experiments with a baseline writer support it")
	latency := flag.Duration("latency", 0, "simulated WAN one-way delay per message for -exp predict (0 = experiment default)")
	jitter := flag.Duration("jitter", 0, "simulated WAN jitter bound per message for -exp predict (0 = experiment default)")
	flag.Parse()

	if *list {
		for _, id := range experimentIDs() {
			if _, ok := writers[id]; ok {
				fmt.Printf("%s (baseline writer)\n", id)
			} else {
				fmt.Println(id)
			}
		}
		return
	}

	var p experiments.Preset
	switch *preset {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "pivot-bench: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	p.NetDelay = *latency
	p.NetJitter = *jitter

	if *exp == "all" {
		start := time.Now()
		results, err := experiments.All(p)
		for _, r := range results {
			fmt.Println(r.Format())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("all experiments done in %s\n", experiments.Elapsed(start))
		return
	}

	fn, ok := experiments.Drivers[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "pivot-bench: unknown experiment %q; registered experiments:\n", *exp)
		for _, id := range experimentIDs() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		os.Exit(2)
	}

	if *jsonOut != "" {
		w, ok := writers[*exp]
		if !ok {
			withWriters := make([]string, 0, len(writers))
			for id := range writers {
				withWriters = append(withWriters, id)
			}
			sort.Strings(withWriters)
			fmt.Fprintf(os.Stderr, "pivot-bench: experiment %q has no baseline writer for -json (writers: %s)\n",
				*exp, strings.Join(withWriters, ", "))
			os.Exit(2)
		}
		start := time.Now()
		summary, err := w(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s baseline -> %s (%s) in %s\n", *exp, *jsonOut, summary, experiments.Elapsed(start))
		return
	}

	start := time.Now()
	res, err := fn(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-bench:", err)
		os.Exit(1)
	}
	fmt.Println(res.Format())
	fmt.Printf("done in %s\n", experiments.Elapsed(start))
}

// pivot-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pivot-bench -exp fig4a                 # one experiment, quick preset
//	pivot-bench -exp all                   # everything, quick preset
//	pivot-bench -exp fig5b -preset paper   # the paper's parameters (slow!)
//	pivot-bench -exp paillier -json BENCH_paillier.json   # perf baseline
//	pivot-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	preset := flag.String("preset", "quick", "quick | paper")
	list := flag.Bool("list", false, "list experiment ids")
	jsonOut := flag.String("json", "", "with -exp paillier, levelwise, predict, serve, update, pipeline or recovery: write the machine-readable perf baseline to this file")
	latency := flag.Duration("latency", 0, "simulated WAN one-way delay per message for -exp predict (0 = experiment default)")
	jitter := flag.Duration("jitter", 0, "simulated WAN jitter bound per message for -exp predict (0 = experiment default)")
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(experiments.Drivers))
		for id := range experiments.Drivers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	var p experiments.Preset
	switch *preset {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "pivot-bench: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	p.NetDelay = *latency
	p.NetJitter = *jitter

	if *exp == "all" {
		start := time.Now()
		results, err := experiments.All(p)
		for _, r := range results {
			fmt.Println(r.Format())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("all experiments done in %s\n", experiments.Elapsed(start))
		return
	}

	if *exp == "paillier" && *jsonOut != "" {
		start := time.Now()
		st, err := experiments.WritePaillierBenchJSON(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("paillier baseline -> %s (enc speedup %.2fx, train speedup %.2fx) in %s\n",
			*jsonOut, st.EncSpeedup, st.TrainSpeedup, experiments.Elapsed(start))
		return
	}

	if *exp == "levelwise" && *jsonOut != "" {
		start := time.Now()
		st, err := experiments.WriteLevelwiseBenchJSON(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("levelwise baseline -> %s (rounds %d -> %d, %.2fx; trees identical: %v) in %s\n",
			*jsonOut, st.PerNodeRounds, st.LevelwiseRounds, st.RoundReduction,
			st.TreesIdentical, experiments.Elapsed(start))
		return
	}

	if *exp == "predict" && *jsonOut != "" {
		start := time.Now()
		st, err := experiments.WritePredictBenchJSON(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("predict baseline -> %s (rounds %d -> %d, %.2fx; msgs %.2fx; WAN wall %.2fx; identical: %v) in %s\n",
			*jsonOut, st.PerSampleRounds, st.BatchRounds, st.RoundReduction,
			st.MsgReduction, st.WANSpeedup, st.PredictionsIdentical, experiments.Elapsed(start))
		return
	}

	if *exp == "serve" && *jsonOut != "" {
		start := time.Now()
		st, err := experiments.WriteServeBenchJSON(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("serve baseline -> %s (micro-batch speedup %.2fx at %gms WAN; identical: %v) in %s\n",
			*jsonOut, st.MicroBatchSpeedup, st.NetDelayMs, st.ResultsIdentical, experiments.Elapsed(start))
		return
	}

	if *exp == "servescale" && *jsonOut != "" {
		start := time.Now()
		st, err := experiments.WriteServeScaleBenchJSON(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("servescale baseline -> %s (S=%d scaling %.2fx at %gms WAN; lane batch %d = %d rounds / %d msgs; kill: ok=%d unavail=%d other=%d requeued=%d; identical: %v) in %s\n",
			*jsonOut, st.Points[len(st.Points)-1].Lanes, st.ScalingX, st.NetDelayMs,
			st.LaneBatch, st.LaneRoundsPerBatch, st.LaneMsgsPerBatch,
			st.Kill.Succeeded, st.Kill.Unavailable, st.Kill.FailedOther, st.Kill.Requeued,
			st.ResultsIdentical, experiments.Elapsed(start))
		return
	}

	if *exp == "update" && *jsonOut != "" {
		start := time.Now()
		st, err := experiments.WriteUpdateBenchJSON(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("update baseline -> %s (GBDT rounds %d -> %d, %.2fx; enhanced update rounds %d -> %d, %.2fx; trees identical: %v) in %s\n",
			*jsonOut, st.SeqRounds, st.BatchRounds, st.RoundReduction,
			st.EnhSeqUpdateRounds, st.EnhBatchUpdateRounds, st.EnhUpdateReduction,
			st.TreesIdentical, experiments.Elapsed(start))
		return
	}

	if *exp == "pipeline" && *jsonOut != "" {
		start := time.Now()
		st, err := experiments.WritePipelineBenchJSON(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		for _, leg := range st.Legs {
			fmt.Printf("pipeline baseline leg %gms: %.2fs -> %.2fs (%.2fx, in-flight peak %d, identical: %v)\n",
				leg.DelayMs, leg.BarrierSeconds, leg.PipelinedSeconds, leg.WallSpeedup,
				leg.InFlightPeak, leg.TreesIdentical)
		}
		fmt.Printf("pipeline baseline -> %s in %s\n", *jsonOut, experiments.Elapsed(start))
		return
	}

	if *exp == "recovery" && *jsonOut != "" {
		start := time.Now()
		st, err := experiments.WriteRecoveryBenchJSON(*jsonOut, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pivot-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("recovery baseline -> %s (crash at level %d: resume %d rounds vs retrain %d, %.2fx wall; model match: %v) in %s\n",
			*jsonOut, st.CrashLevel, st.ResumeRounds, st.RetrainRounds,
			st.ResumeSpeedup, st.ModelMatch, experiments.Elapsed(start))
		return
	}

	fn, ok := experiments.Drivers[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "pivot-bench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	start := time.Now()
	res, err := fn(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-bench:", err)
		os.Exit(1)
	}
	fmt.Println(res.Format())
	fmt.Printf("done in %s\n", experiments.Elapsed(start))
}

// pivot-serve is the long-lived prediction daemon: it brings up a
// federation, trains (or loads) models into a named registry, and then
// keeps answering prediction queries over a small length-prefixed TCP
// protocol — the paper's end-state of a deployed federation.  Concurrent
// single-sample requests are coalesced into shared batched MPC round
// chains (micro-batching), so serving throughput scales with the batch
// pipeline instead of paying one round chain per request.
//
// With -lanes S > 1 the daemon runs a session pool: S independent
// federated meshes behind one registry and a cross-model fair scheduler,
// so throughput scales with lanes and a dead lane degrades to S-1 and
// rebuilds in the background instead of taking the daemon down.  The
// wire can be secured with TLS (-tls-cert/-tls-key) and a shared auth
// token (-auth), and -state-dir journals the registry (models +
// versions) across restarts.
//
// Usage:
//
//	pivot-serve -data train.csv -classes 2 -m 3 -train dt,rf -addr 127.0.0.1:9100
//	pivot-serve -synth 64 -classes 2 -train dt     # synthetic data, smoke tests
//	pivot-serve -synth 64 -train dt -lanes 4 -auth tok -state-dir /var/lib/pivot
//
// Talk to it with pivot.Dial / pivot.DialOpts (see cmd/pivot-predict
// -remote), which can submit samples, list models, fetch stats and
// request a graceful drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pivot "repro"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/transport"
)

// engine is what both serving backends (single-session Service, sharded
// Pool) offer the daemon beyond the wire-facing Backend surface.
type engine interface {
	serve.Backend
	Register(name string, mdl core.Predictor) (*serve.Entry, error)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9100", "listen address")
	dataPath := flag.String("data", "", "training CSV (empty = synthetic, see -synth)")
	synthN := flag.Int("synth", 64, "synthetic samples when -data is empty")
	synthD := flag.Int("synthd", 6, "synthetic features when -data is empty")
	classes := flag.Int("classes", 2, "number of classes (0 = regression)")
	m := flag.Int("m", 3, "number of clients")
	train := flag.String("train", "dt", "comma-separated model kinds to train and register: dt,rf,gbdt")
	models := flag.String("model", "", "comma-separated name=path pairs of model JSONs (pivot-train output) to register")
	protocol := flag.String("protocol", "basic", "basic | enhanced")
	keyBits := flag.Int("keybits", 512, "threshold Paillier key size")
	seed := flag.Int64("seed", 7, "protocol seed")
	depth := flag.Int("depth", 4, "max tree depth")
	splits := flag.Int("splits", 8, "max splits per feature")
	trees := flag.Int("trees", 4, "ensemble size for rf/gbdt")
	window := flag.Duration("window", 2*time.Millisecond, "micro-batch coalescing window")
	maxBatch := flag.Int("maxbatch", 256, "max samples per coalesced round chain")
	maxQueue := flag.Int("queue", 1024, "admission bound on queued samples")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	lanes := flag.Int("lanes", 1, "independent serving sessions (1 = classic single-session daemon)")
	tlsCert := flag.String("tls-cert", "", "PEM certificate for a TLS wire (requires -tls-key)")
	tlsKey := flag.String("tls-key", "", "PEM private key for -tls-cert")
	auth := flag.String("auth", "", "shared auth token clients must present (pair with TLS off-loopback)")
	stateDir := flag.String("state-dir", "", "journal the model registry here and reload it on boot")
	flag.Parse()

	var ds *pivot.Dataset
	var err error
	if *dataPath != "" {
		ds, err = pivot.LoadCSVFile(*dataPath, *classes)
	} else if *classes > 0 {
		ds = pivot.SyntheticClassification(*synthN, *synthD, *classes, 2.0, uint64(*seed))
	} else {
		ds = pivot.SyntheticRegression(*synthN, *synthD, 0.2, uint64(*seed))
	}
	if err != nil {
		fail(err)
	}

	cfg := pivot.DefaultConfig()
	cfg.KeyBits = *keyBits
	cfg.Seed = *seed
	cfg.Tree.MaxDepth = *depth
	cfg.Tree.MaxSplits = *splits
	cfg.NumTrees = *trees
	if *protocol == "enhanced" {
		cfg.Protocol = pivot.Enhanced
	}

	// The persistence store is opened further down (it needs the registry);
	// the journal closure reads it at call time, so version bumps from
	// incremental updates installed while serving are persisted too.
	var store *serve.Store
	journal := func(e *serve.Entry) {
		if store == nil {
			return
		}
		if err := store.Save(e); err != nil {
			fmt.Fprintf(os.Stderr, "pivot-serve: journal %s v%d: %v\n", e.Name, e.Version, err)
		}
	}

	svcCfg := serve.Config{
		Window:          *window,
		MaxBatch:        *maxBatch,
		MaxQueue:        *maxQueue,
		DefaultDeadline: *deadline,
		Journal:         journal,
	}

	// Serving engine: one session, or a pool of independent lanes.
	var backend engine
	var registry *serve.Registry
	var trainSess *core.Session
	if *lanes > 1 {
		if cfg.Protocol == pivot.Enhanced {
			// Enhanced models hold ciphertexts bound to one session's key
			// material; independent lanes each deal their own keys.
			fail(fmt.Errorf("-lanes %d requires the basic protocol (enhanced models are bound to a single session's keys)", *lanes))
		}
		parts, err := pivot.VerticalPartition(ds, *m, 0)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		pool, err := serve.NewPool(parts, serve.PoolConfig{
			Config: svcCfg,
			Lanes:  *lanes,
			LaneFactory: func(lane int) (*core.Session, error) {
				laneCfg := cfg
				laneCfg.Seed = cfg.Seed + int64(lane)
				return core.NewSession(parts, laneCfg)
			},
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("spawned %d lanes in %s\n", *lanes, time.Since(start).Round(time.Millisecond))
		backend, registry, trainSess = pool, pool.Registry, pool.LaneSession(0)
	} else {
		fed, err := pivot.NewFederation(ds, *m, cfg)
		if err != nil {
			fail(err)
		}
		svc, err := serve.New(fed.Session(), fed.Parts(), svcCfg)
		if err != nil {
			fed.Close()
			fail(err)
		}
		backend, registry, trainSess = svc, svc.Registry, fed.Session()
	}
	defer backend.Close()

	// Registry persistence: reload the journal first (restored entries
	// keep their versions), then journal everything registered below.
	if *stateDir != "" {
		store, err = serve.OpenStore(*stateDir)
		if err != nil {
			fail(err)
		}
		n, errs := store.Restore(registry)
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "pivot-serve: state-dir:", e)
		}
		if n > 0 {
			fmt.Printf("restored %d model(s) from %s\n", n, *stateDir)
		}
	}

	// Freshly trained models under their kind name, plus any model JSONs
	// (basic protocol — enhanced models are bound to their training
	// session's keys and must be trained here).
	for _, kind := range strings.Split(*train, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		start := time.Now()
		mdl, err := core.Train(trainSess, core.TrainSpec{Model: core.ModelKind(kind)})
		if err != nil {
			fail(fmt.Errorf("training %s: %w", kind, err))
		}
		entry, err := backend.Register(kind, mdl)
		if err != nil {
			fail(err)
		}
		journal(entry)
		fmt.Printf("trained and registered %s v%d in %s\n", entry.Name, entry.Version, time.Since(start).Round(time.Millisecond))
	}
	for _, pair := range strings.Split(*models, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, path, ok := strings.Cut(pair, "=")
		if !ok {
			fail(fmt.Errorf("-model wants name=path, got %q", pair))
		}
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		mdl, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if mdl.Protocol == core.Enhanced {
			fail(fmt.Errorf("model %q: enhanced models are bound to their training session's keys; train them in-daemon with -train", name))
		}
		entry, err := backend.Register(name, mdl)
		if err != nil {
			fail(err)
		}
		journal(entry)
		fmt.Printf("loaded and registered %s v%d from %s\n", entry.Name, entry.Version, path)
	}

	// Wire security.
	var wire serve.WireConfig
	if (*tlsCert == "") != (*tlsKey == "") {
		fail(fmt.Errorf("-tls-cert and -tls-key must be set together"))
	}
	if *tlsCert != "" {
		wire.TLS, err = transport.LoadServerTLS(*tlsCert, *tlsKey)
		if err != nil {
			fail(err)
		}
	}
	wire.AuthToken = *auth

	srv, err := serve.NewServerWire(backend, *addr, wire)
	if err != nil {
		fail(err)
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("signal received, draining")
		srv.Shutdown()
	}()

	security := "plaintext"
	if wire.TLS != nil {
		security = "tls"
	}
	if wire.AuthToken != "" {
		security += "+auth"
	}
	fmt.Printf("pivot-serve listening on %s (m=%d, lanes=%d, window=%s, maxbatch=%d, wire=%s)\n",
		srv.Addr(), *m, *lanes, *window, *maxBatch, security)
	if err := srv.Serve(); err != nil {
		fail(err)
	}
	st := backend.Stats()
	if st.Serve != nil {
		fmt.Printf("served %d samples in %d batches (max batch %d, rejected %d, expired %d, requeued %d, updates %d)\n",
			st.Serve.Coalesced, st.Serve.Batches, st.Serve.MaxBatch, st.Serve.Rejected, st.Serve.Expired, st.Serve.Requeued, st.Serve.Updates)
		for _, ls := range st.Serve.Lanes {
			fmt.Printf("  lane %d: healthy=%v batches=%d samples=%d rebuilds=%d\n",
				ls.Lane, ls.Healthy, ls.Batches, ls.Samples, ls.Rebuilds)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pivot-serve:", err)
	os.Exit(1)
}

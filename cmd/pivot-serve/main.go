// pivot-serve is the long-lived prediction daemon: it brings up a
// federation, trains (or loads) models into a named registry, and then
// keeps answering prediction queries over a small length-prefixed TCP
// protocol — the paper's end-state of a deployed federation.  Concurrent
// single-sample requests are coalesced into shared batched MPC round
// chains (micro-batching), so serving throughput scales with the batch
// pipeline instead of paying one round chain per request.
//
// Usage:
//
//	pivot-serve -data train.csv -classes 2 -m 3 -train dt,rf -addr 127.0.0.1:9100
//	pivot-serve -synth 64 -classes 2 -train dt     # synthetic data, smoke tests
//
// Talk to it with pivot.Dial (see cmd/pivot-predict -remote), which can
// submit samples, list models, fetch stats and request a graceful drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pivot "repro"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9100", "listen address")
	dataPath := flag.String("data", "", "training CSV (empty = synthetic, see -synth)")
	synthN := flag.Int("synth", 64, "synthetic samples when -data is empty")
	synthD := flag.Int("synthd", 6, "synthetic features when -data is empty")
	classes := flag.Int("classes", 2, "number of classes (0 = regression)")
	m := flag.Int("m", 3, "number of clients")
	train := flag.String("train", "dt", "comma-separated model kinds to train and register: dt,rf,gbdt")
	models := flag.String("model", "", "comma-separated name=path pairs of model JSONs (pivot-train output) to register")
	protocol := flag.String("protocol", "basic", "basic | enhanced")
	keyBits := flag.Int("keybits", 512, "threshold Paillier key size")
	seed := flag.Int64("seed", 7, "protocol seed")
	depth := flag.Int("depth", 4, "max tree depth")
	splits := flag.Int("splits", 8, "max splits per feature")
	trees := flag.Int("trees", 4, "ensemble size for rf/gbdt")
	window := flag.Duration("window", 2*time.Millisecond, "micro-batch coalescing window")
	maxBatch := flag.Int("maxbatch", 256, "max samples per coalesced round chain")
	maxQueue := flag.Int("queue", 1024, "admission bound on queued samples")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	flag.Parse()

	var ds *pivot.Dataset
	var err error
	if *dataPath != "" {
		ds, err = pivot.LoadCSVFile(*dataPath, *classes)
	} else if *classes > 0 {
		ds = pivot.SyntheticClassification(*synthN, *synthD, *classes, 2.0, uint64(*seed))
	} else {
		ds = pivot.SyntheticRegression(*synthN, *synthD, 0.2, uint64(*seed))
	}
	if err != nil {
		fail(err)
	}

	cfg := pivot.DefaultConfig()
	cfg.KeyBits = *keyBits
	cfg.Seed = *seed
	cfg.Tree.MaxDepth = *depth
	cfg.Tree.MaxSplits = *splits
	cfg.NumTrees = *trees
	if *protocol == "enhanced" {
		cfg.Protocol = pivot.Enhanced
	}

	fed, err := pivot.NewFederation(ds, *m, cfg)
	if err != nil {
		fail(err)
	}
	defer fed.Close()

	svc, err := serve.New(fed.Session(), fed.Parts(), serve.Config{
		Window:          *window,
		MaxBatch:        *maxBatch,
		MaxQueue:        *maxQueue,
		DefaultDeadline: *deadline,
	})
	if err != nil {
		fail(err)
	}

	// Registry: freshly trained models under their kind name, plus any
	// model JSONs (basic protocol — enhanced models are bound to their
	// training session's keys and must be trained here).
	for _, kind := range strings.Split(*train, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		start := time.Now()
		mdl, err := fed.Train(pivot.TrainSpec{Model: pivot.ModelKind(kind)})
		if err != nil {
			fail(fmt.Errorf("training %s: %w", kind, err))
		}
		entry, err := svc.Register(kind, mdl)
		if err != nil {
			fail(err)
		}
		fmt.Printf("trained and registered %s v%d in %s\n", entry.Name, entry.Version, time.Since(start).Round(time.Millisecond))
	}
	for _, pair := range strings.Split(*models, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, path, ok := strings.Cut(pair, "=")
		if !ok {
			fail(fmt.Errorf("-model wants name=path, got %q", pair))
		}
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		mdl, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if mdl.Protocol == core.Enhanced {
			fail(fmt.Errorf("model %q: enhanced models are bound to their training session's keys; train them in-daemon with -train", name))
		}
		entry, err := svc.Register(name, mdl)
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded and registered %s v%d from %s\n", entry.Name, entry.Version, path)
	}

	srv, err := serve.NewServer(svc, *addr)
	if err != nil {
		fail(err)
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("signal received, draining")
		srv.Shutdown()
	}()

	fmt.Printf("pivot-serve listening on %s (m=%d, window=%s, maxbatch=%d)\n", srv.Addr(), *m, *window, *maxBatch)
	if err := srv.Serve(); err != nil {
		fail(err)
	}
	st := svc.Stats()
	if st.Serve != nil {
		fmt.Printf("served %d samples in %d batches (max batch %d, rejected %d, expired %d)\n",
			st.Serve.Coalesced, st.Serve.Batches, st.Serve.MaxBatch, st.Serve.Rejected, st.Serve.Expired)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pivot-serve:", err)
	os.Exit(1)
}

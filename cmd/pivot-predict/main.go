// pivot-predict loads a model trained by pivot-train and runs the
// privacy-preserving prediction protocol over a CSV of samples, reporting
// accuracy (classification) or MSE (regression) against the labels.
//
// Usage:
//
//	pivot-predict -model model.json -data test.csv -classes 2 -m 3
package main

import (
	"flag"
	"fmt"
	"os"

	pivot "repro"
	"repro/internal/core"
)

func main() {
	modelPath := flag.String("model", "model.json", "model JSON from pivot-train")
	dataPath := flag.String("data", "", "CSV with samples to predict")
	classes := flag.Int("classes", 0, "number of classes (0 = regression)")
	m := flag.Int("m", 3, "number of clients (must match training)")
	limit := flag.Int("limit", 0, "predict only the first N samples (0 = all)")
	keyBits := flag.Int("keybits", 512, "threshold Paillier key size")
	batch := flag.Int("batch", 0, "samples per batched prediction round chain (0 = all at once)")
	flag.Parse()

	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "pivot-predict: -data is required")
		os.Exit(2)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fail(err)
	}
	model, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if model.Protocol == core.Enhanced {
		fmt.Fprintln(os.Stderr, "pivot-predict: enhanced models are bound to their training session's keys; predict inside pivot-train or the library API")
		os.Exit(2)
	}
	ds, err := pivot.LoadCSVFile(*dataPath, *classes)
	if err != nil {
		fail(err)
	}
	if *limit > 0 && ds.N() > *limit {
		ds.X = ds.X[:*limit]
		ds.Y = ds.Y[:*limit]
	}

	cfg := pivot.DefaultConfig()
	cfg.KeyBits = *keyBits
	cfg.PredictBatch = *batch
	fed, err := pivot.NewFederation(ds, *m, cfg)
	if err != nil {
		fail(err)
	}
	defer fed.Close()

	// Batched pipeline: one MPC round chain per batch of samples, with
	// leaf paths derived once per model instead of once per sample.
	preds, err := fed.PredictDataset(model)
	if err != nil {
		fail(err)
	}
	var correct int
	var sqErr float64
	for i, pred := range preds {
		if *classes > 0 {
			if pred == ds.Y[i] {
				correct++
			}
		} else {
			d := pred - ds.Y[i]
			sqErr += d * d
		}
	}
	if *classes > 0 {
		fmt.Printf("accuracy: %.4f (%d/%d)\n", float64(correct)/float64(ds.N()), correct, ds.N())
	} else {
		fmt.Printf("mse: %.6f over %d samples\n", sqErr/float64(ds.N()), ds.N())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pivot-predict:", err)
	os.Exit(1)
}

// pivot-predict loads a model trained by pivot-train and runs the
// privacy-preserving prediction protocol over a CSV of samples, reporting
// accuracy (classification) or MSE (regression) against the labels.
//
// Usage:
//
//	pivot-predict -model model.json -data test.csv -classes 2 -m 3
//
// With -remote it instead submits the samples to a running pivot-serve
// daemon over the wire protocol — one connection per -conns, one sample
// per request, so concurrent requests exercise the daemon's micro-batch
// coalescing:
//
//	pivot-predict -remote 127.0.0.1:9100 -name dt -data test.csv -classes 2
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	pivot "repro"
	"repro/internal/core"
)

func main() {
	modelPath := flag.String("model", "model.json", "model JSON from pivot-train (local mode)")
	dataPath := flag.String("data", "", "CSV with samples to predict")
	classes := flag.Int("classes", 0, "number of classes (0 = regression)")
	m := flag.Int("m", 3, "number of clients (must match training)")
	limit := flag.Int("limit", 0, "predict only the first N samples (0 = all)")
	keyBits := flag.Int("keybits", 512, "threshold Paillier key size")
	batch := flag.Int("batch", 0, "samples per batched prediction round chain (0 = all at once)")
	remote := flag.String("remote", "", "pivot-serve address; predict over the wire instead of locally")
	name := flag.String("name", "dt", "registry model name (with -remote)")
	conns := flag.Int("conns", 8, "concurrent daemon connections (with -remote)")
	shutdown := flag.Bool("shutdown", false, "ask the daemon to drain and exit afterwards (with -remote)")
	tlsCA := flag.String("tls-ca", "", "PEM CA bundle to verify the daemon's TLS cert (with -remote)")
	insecureTLS := flag.Bool("insecure-tls", false, "TLS without certificate verification (with -remote; testing only)")
	auth := flag.String("auth", "", "shared auth token matching the daemon's -auth (with -remote)")
	retryWait := flag.Duration("retry", 0, "ride out daemon degradation for up to this long per request (with -remote)")
	update := flag.String("update", "", "CSV of appended labelled samples to absorb into the model first (with -remote; incremental training, installs version+1)")
	addTrees := flag.Int("addtrees", 0, "extra boosting rounds for a GBDT -update (<= 0 selects 1)")
	flag.Parse()

	var opts pivot.ServeDialOptions
	var err error
	if *remote != "" {
		opts = pivot.ServeDialOptions{AuthToken: *auth}
		if *tlsCA != "" || *insecureTLS {
			opts.TLS, err = pivot.LoadClientTLS(*tlsCA, "", *insecureTLS)
			if err != nil {
				fail(err)
			}
		}
	}

	// Incremental absorb first, so the predictions below land on the
	// refreshed version.
	if *update != "" {
		if *remote == "" {
			fmt.Fprintln(os.Stderr, "pivot-predict: -update requires -remote (local warm starts live in pivot-train -update)")
			os.Exit(2)
		}
		ups, err := pivot.LoadCSVFile(*update, *classes)
		if err != nil {
			fail(err)
		}
		cli, err := pivot.DialOpts(*remote, opts)
		if err != nil {
			fail(err)
		}
		version, err := cli.Update(*name, ups.X, ups.Y, *addTrees)
		cli.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("absorbed %d samples into %s -> v%d\n", ups.N(), *name, version)
	}

	if *dataPath == "" {
		if *update != "" {
			return // absorb-only invocation
		}
		fmt.Fprintln(os.Stderr, "pivot-predict: -data is required")
		os.Exit(2)
	}
	ds, err := pivot.LoadCSVFile(*dataPath, *classes)
	if err != nil {
		fail(err)
	}
	if *limit > 0 && ds.N() > *limit {
		ds.X = ds.X[:*limit]
		ds.Y = ds.Y[:*limit]
	}

	var preds []float64
	if *remote != "" {
		preds, err = predictRemote(*remote, *name, *conns, *shutdown, *retryWait, opts, ds.X)
	} else {
		preds, err = predictLocal(*modelPath, ds, *m, *keyBits, *batch)
	}
	if err != nil {
		fail(err)
	}

	var correct int
	var sqErr float64
	for i, pred := range preds {
		if *classes > 0 {
			if pred == ds.Y[i] {
				correct++
			}
		} else {
			d := pred - ds.Y[i]
			sqErr += d * d
		}
	}
	if *classes > 0 {
		fmt.Printf("accuracy: %.4f (%d/%d)\n", float64(correct)/float64(ds.N()), correct, ds.N())
	} else {
		fmt.Printf("mse: %.6f over %d samples\n", sqErr/float64(ds.N()), ds.N())
	}
}

// predictLocal brings up an in-process federation and evaluates the model
// through the unified batched pipeline (one MPC round chain per -batch
// samples).
func predictLocal(modelPath string, ds *pivot.Dataset, m, keyBits, batch int) ([]float64, error) {
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, err
	}
	model, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if model.Protocol == core.Enhanced {
		return nil, fmt.Errorf("enhanced models are bound to their training session's keys; predict inside pivot-train or the library API")
	}
	cfg := pivot.DefaultConfig()
	cfg.KeyBits = keyBits
	cfg.PredictBatch = batch
	fed, err := pivot.NewFederation(ds, m, cfg)
	if err != nil {
		return nil, err
	}
	defer fed.Close()
	return fed.PredictAll(model)
}

// predictRemote fans the samples out over conns connections, one sample
// per request, so the daemon's micro-batching coalesces them into shared
// round chains; it prints the daemon's serving stats afterwards.  With
// retryWait > 0 each request rides out daemon degradation (lane failover,
// drain windows) via the RetryAfter-hinted retry loop.
func predictRemote(addr, name string, conns int, shutdown bool, retryWait time.Duration, opts pivot.ServeDialOptions, rows [][]float64) ([]float64, error) {
	n := len(rows)
	if conns < 1 {
		conns = 1
	}
	if conns > n {
		conns = n
	}
	preds := make([]float64, n)
	errs := make([]error, conns)
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)

	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := pivot.DialOpts(addr, opts)
			if err != nil {
				errs[w] = err
				return
			}
			defer cli.Close()
			for i := range next {
				var ps []float64
				var err error
				if retryWait > 0 {
					ps, err = cli.PredictRetry(name, [][]float64{rows[i]}, retryWait)
				} else {
					ps, err = cli.Predict(name, [][]float64{rows[i]})
				}
				if err != nil {
					errs[w] = err
					return
				}
				preds[i] = ps[0]
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	cli, err := pivot.DialOpts(addr, opts)
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	st, err := cli.Stats()
	if err != nil {
		return nil, err
	}
	if st.Serve != nil {
		fmt.Printf("server stats: requests=%d batches=%d coalesced=%d max_batch=%d rejected=%d expired=%d\n",
			st.Serve.Requests, st.Serve.Batches, st.Serve.Coalesced, st.Serve.MaxBatch,
			st.Serve.Rejected, st.Serve.Expired)
	}
	if shutdown {
		if err := cli.Shutdown(); err != nil {
			return nil, err
		}
		fmt.Println("daemon draining")
	}
	return preds, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pivot-predict:", err)
	os.Exit(1)
}

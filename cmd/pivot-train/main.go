// pivot-train trains a Pivot model over a CSV dataset, simulating the m
// vertically federated clients in one process, and writes the trained model
// as JSON.
//
// Usage:
//
//	pivot-train -data data.csv -classes 2 -m 3 -model dt -protocol basic \
//	            -depth 4 -splits 8 -out model.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	pivot "repro"
	"repro/internal/core"
)

func main() {
	dataPath := flag.String("data", "", "input CSV (features..., label)")
	classes := flag.Int("classes", 0, "number of classes (0 = regression)")
	m := flag.Int("m", 3, "number of clients")
	modelKind := flag.String("model", "dt", "dt | rf | gbdt")
	protocol := flag.String("protocol", "basic", "basic | enhanced (dt only)")
	hide := flag.String("hide", "threshold", "enhanced hide level: threshold | feature | client (§5.2)")
	criterion := flag.String("criterion", "gini", "classification split criterion: gini | entropy | gain-ratio")
	depth := flag.Int("depth", 4, "max tree depth h")
	splits := flag.Int("splits", 8, "max splits per feature b")
	trees := flag.Int("trees", 4, "ensemble trees W")
	keyBits := flag.Int("keybits", 512, "threshold Paillier key size")
	workers := flag.Int("workers", 1, "parallel decryption workers (-PP)")
	malicious := flag.Bool("malicious", false, "enable the malicious-model extension")
	epsilon := flag.Float64("dp", 0, "differential privacy ε per query (0 = off)")
	out := flag.String("out", "model.json", "output model path (dt only)")
	print := flag.Bool("print", false, "print the released model (concealed fields as placeholders)")
	dot := flag.String("dot", "", "also write the model as Graphviz dot to this path (dt only)")
	update := flag.String("update", "", "trained model JSON to warm-start instead of training from scratch: absorb -append into it (incremental training, basic dt)")
	appendPath := flag.String("append", "", "CSV of appended labelled samples for -update")
	flag.Parse()

	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "pivot-train: -data is required")
		os.Exit(2)
	}
	ds, err := pivot.LoadCSVFile(*dataPath, *classes)
	if err != nil {
		fail(err)
	}

	cfg := pivot.DefaultConfig()
	cfg.KeyBits = *keyBits
	cfg.Workers = *workers
	cfg.Malicious = *malicious
	cfg.NumTrees = *trees
	cfg.Tree = pivot.TreeHyper{MaxDepth: *depth, MaxSplits: *splits, MinSamplesSplit: 2, LeafOnZeroGain: true}
	if *protocol == "enhanced" {
		cfg.Protocol = pivot.Enhanced
	}
	switch *hide {
	case "threshold":
		cfg.Hide = pivot.HideThreshold
	case "feature":
		cfg.Hide = pivot.HideFeature
	case "client":
		cfg.Hide = pivot.HideClient
	default:
		fmt.Fprintf(os.Stderr, "pivot-train: unknown hide level %q\n", *hide)
		os.Exit(2)
	}
	switch *criterion {
	case "gini":
		cfg.Tree.Criterion = pivot.Gini
	case "entropy":
		cfg.Tree.Criterion = pivot.Entropy
	case "gain-ratio":
		cfg.Tree.Criterion = pivot.GainRatio
	default:
		fmt.Fprintf(os.Stderr, "pivot-train: unknown criterion %q\n", *criterion)
		os.Exit(2)
	}
	if *epsilon > 0 {
		cfg.DP = &pivot.DPConfig{Epsilon: *epsilon}
	}

	fed, err := pivot.NewFederation(ds, *m, cfg)
	if err != nil {
		fail(err)
	}
	defer fed.Close()

	// Warm start: replay the released tree over old+new rows and re-resolve
	// only the leaves, instead of a full retrain (-data is the original
	// training set, -append the new batch).
	if *update != "" {
		if *appendPath == "" {
			fmt.Fprintln(os.Stderr, "pivot-train: -update requires -append")
			os.Exit(2)
		}
		f, err := os.Open(*update)
		if err != nil {
			fail(err)
		}
		model, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		ups, err := pivot.LoadCSVFile(*appendPath, *classes)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		refreshed, err := fed.Update(model, ups, 0)
		if err != nil {
			fail(err)
		}
		out2, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := refreshed.(*pivot.Model).Save(out2); err != nil {
			fail(err)
		}
		out2.Close()
		fmt.Printf("absorbed %d samples into %s (leaves refreshed, structure kept) -> %s\n",
			ups.N(), *update, *out)
		st := fed.Stats()
		fmt.Printf("wall %v | encryptions %d | MPC rounds %d | bytes sent %d\n",
			time.Since(start).Round(time.Millisecond), st.Encryptions, st.MPC.Rounds, st.BytesSent)
		return
	}

	start := time.Now()
	switch *modelKind {
	case "dt":
		model, err := fed.TrainDecisionTree()
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := model.Save(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("trained %s decision tree: %d internal nodes, %d leaves -> %s\n",
			*protocol, model.InternalNodes(), model.Leaves, *out)
		if *print {
			fmt.Print(model.String())
		}
		if *dot != "" {
			if err := os.WriteFile(*dot, []byte(model.Dot()), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote Graphviz rendering -> %s\n", *dot)
		}
	case "rf":
		fm, err := fed.TrainRandomForest()
		if err != nil {
			fail(err)
		}
		fmt.Printf("trained random forest: %d trees\n", len(fm.Trees))
	case "gbdt":
		bm, err := fed.TrainGBDT()
		if err != nil {
			fail(err)
		}
		total := 0
		for _, f := range bm.Forests {
			total += len(f)
		}
		fmt.Printf("trained GBDT: %d trees across %d forests\n", total, len(bm.Forests))
	default:
		fmt.Fprintf(os.Stderr, "pivot-train: unknown model %q\n", *modelKind)
		os.Exit(2)
	}
	st := fed.Stats()
	fmt.Printf("wall %v | encryptions %d | threshold-dec shares %d | MPC mults %d | bytes sent %d\n",
		time.Since(start).Round(time.Millisecond), st.Encryptions, st.DecShares, st.MPC.Mults, st.BytesSent)
	printPhases(st)
}

func printPhases(st core.RunStats) {
	fmt.Printf("phases: local %v | conversion %v | mpc %v | update %v\n",
		st.Phases.LocalComputation.Round(time.Millisecond),
		st.Phases.Conversion.Round(time.Millisecond),
		st.Phases.MPCComputation.Round(time.Millisecond),
		st.Phases.ModelUpdate.Round(time.Millisecond))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pivot-train:", err)
	os.Exit(1)
}

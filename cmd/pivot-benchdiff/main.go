// pivot-benchdiff compares a freshly produced bench JSON against a
// committed baseline and fails when count metrics regress — the CI
// regression gate behind every bench smoke step.
//
// Gated metrics are numeric keys whose dotted path contains "rounds",
// "msgs", "messages" or "bytes": deterministic round/message/byte counters
// that only a real protocol change can move.  A gated metric may improve
// freely but must not exceed baseline·(1+tolerance).  Everything else —
// wall-clock seconds, speedups, throughput, derived reduction ratios — is
// advisory: printed for the log, never fatal, because CI machine noise
// would make gating them flaky.
//
// Usage:
//
//	pivot-benchdiff -baseline BENCH_update.json -current /tmp/BENCH_update_ci.json
//	pivot-benchdiff -baseline ... -current ... -tolerance 0.15
//	pivot-benchdiff -baseline ... -current ... -require gbdt_batch_bytes_sent
//
// -require names keys (comma-separated) that MUST be present as gated
// numbers in both files: the substring gate only fires for keys the
// baseline still carries, so a rename or drop on both sides would silently
// retire a gate — -require turns that into a failure.
//
// Baselines can also carry their own manifest: a top-level
//
//	"gates": {"require": ["absorb_mpc_rounds", ...]}
//
// block inside the committed BENCH_*.json is read automatically and merged
// with -require, so each experiment registers its required gates in its
// baseline and CI runs one uniform diff step with no per-experiment flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// flatten walks arbitrarily nested JSON into dotted-path leaves.
func flatten(prefix string, v any, out map[string]any) {
	switch x := v.(type) {
	case map[string]any:
		for k, vv := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, vv, out)
		}
	case []any:
		for i, vv := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), vv, out)
		}
	default:
		out[prefix] = v
	}
}

func load(path string) (map[string]any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]any{}
	flatten("", v, out)
	return out, nil
}

// loadGates reads the baseline's embedded gates manifest (absent = none).
func loadGates(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m struct {
		Gates struct {
			Require []string `json:"require"`
		} `json:"gates"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m.Gates.Require, nil
}

// gated reports whether a key is a deterministic count metric that must not
// regress.  Derived ratios and wall-clock figures are advisory only.
func gated(key string) bool {
	k := strings.ToLower(key)
	for _, skip := range []string{"reduction", "speedup", "seconds", "throughput", "latency", "ratio"} {
		if strings.Contains(k, skip) {
			return false
		}
	}
	for _, hit := range []string{"rounds", "msgs", "messages", "bytes"} {
		if strings.Contains(k, hit) {
			return true
		}
	}
	return false
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON (e.g. BENCH_update.json)")
	current := flag.String("current", "", "freshly produced bench JSON to check")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional regression on gated count metrics")
	require := flag.String("require", "", "comma-separated keys that must exist as gated numbers in both files")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "pivot-benchdiff: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-benchdiff:", err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	fmt.Printf("%-42s %16s %16s %9s  %s\n", "metric", "baseline", "current", "delta", "status")
	for _, k := range keys {
		bv, bok := base[k].(float64)
		if !bok {
			continue // bools, strings: identity is covered by the bench's own checks
		}
		cvAny, ok := cur[k]
		if !ok {
			if gated(k) {
				fmt.Printf("%-42s %16g %16s %9s  MISSING\n", k, bv, "-", "-")
				regressions++
			}
			continue
		}
		cv, cok := cvAny.(float64)
		if !cok {
			continue
		}
		delta := "n/a"
		if bv != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(cv-bv)/bv)
		}
		status := "advisory"
		if gated(k) {
			status = "ok"
			if cv > bv*(1+*tolerance) {
				status = "REGRESSED"
				regressions++
			}
		}
		fmt.Printf("%-42s %16g %16g %9s  %s\n", k, bv, cv, delta, status)
	}
	// Required keys: the baseline's own gates manifest plus any -require
	// flags, deduplicated.
	manifest, err := loadGates(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pivot-benchdiff:", err)
		os.Exit(2)
	}
	required := append(manifest, strings.Split(*require, ",")...)
	seen := map[string]bool{}
	for _, k := range required {
		k = strings.TrimSpace(k)
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		_, bok := base[k].(float64)
		_, cok := cur[k].(float64)
		switch {
		case !bok || !cok:
			fmt.Printf("%-42s %16s %16s %9s  REQUIRED-MISSING\n", k, "-", "-", "-")
			regressions++
		case !gated(k):
			fmt.Printf("%-42s %16s %16s %9s  REQUIRED-UNGATED\n", k, "-", "-", "-")
			regressions++
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "pivot-benchdiff: %d gated metric(s) regressed beyond %.0f%% vs %s\n",
			regressions, *tolerance*100, *baseline)
		os.Exit(1)
	}
	fmt.Printf("pivot-benchdiff: no gated regressions vs %s (tolerance %.0f%%)\n", *baseline, *tolerance*100)
}

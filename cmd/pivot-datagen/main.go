// pivot-datagen generates synthetic datasets (or the Table 3 stand-ins) as
// CSV files for use with pivot-train.
//
// Usage:
//
//	pivot-datagen -kind classification -n 1000 -d 12 -classes 2 -out data.csv
//	pivot-datagen -kind bank-market -out bank.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	kind := flag.String("kind", "classification", "classification | regression | bank-market | credit-card | appliances-energy")
	n := flag.Int("n", 1000, "number of samples (synthetic kinds)")
	d := flag.Int("d", 12, "number of features (synthetic kinds)")
	classes := flag.Int("classes", 2, "number of classes (classification)")
	sep := flag.Float64("sep", 2.0, "class separation (classification)")
	noise := flag.Float64("noise", 0.3, "label noise (regression)")
	seed := flag.Uint64("seed", 1, "generator seed")
	appendN := flag.Int("append", 0, "emit only an extra batch of this many samples continuing an existing -n/-seed file: rows [n, n+append) of the same deterministic stream (synthetic kinds)")
	out := flag.String("out", "", "output CSV path (default stdout)")
	flag.Parse()

	// An append batch is drawn from the same distribution and seed stream
	// as the existing file: the generators draw their parameters first and
	// then one sample at a time, so generating n+append rows and keeping
	// the suffix is exactly "the next append rows" of the original run.
	total := *n + *appendN

	var ds *dataset.Dataset
	switch *kind {
	case "classification":
		ds = dataset.SyntheticClassification(total, *d, *classes, *sep, *seed)
	case "regression":
		ds = dataset.SyntheticRegression(total, *d, *noise, *seed)
	case "bank-market", "credit-card", "appliances-energy":
		if *appendN > 0 {
			fmt.Fprintf(os.Stderr, "pivot-datagen: -append needs a synthetic kind (%q is a fixed stand-in set)\n", *kind)
			os.Exit(2)
		}
		switch *kind {
		case "bank-market":
			ds = dataset.BankMarketing(*seed)
		case "credit-card":
			ds = dataset.CreditCard(*seed)
		case "appliances-energy":
			ds = dataset.AppliancesEnergy(*seed)
		}
	default:
		fmt.Fprintf(os.Stderr, "pivot-datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *appendN > 0 {
		ds = &dataset.Dataset{X: ds.X[*n:], Y: ds.Y[*n:], Classes: ds.Classes, Names: ds.Names}
	}

	if *out == "" {
		if err := dataset.SaveCSV(ds, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pivot-datagen:", err)
			os.Exit(1)
		}
		return
	}
	if err := dataset.SaveCSVFile(ds, *out); err != nil {
		fmt.Fprintln(os.Stderr, "pivot-datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d samples x %d features to %s\n", ds.N(), ds.D(), *out)
}

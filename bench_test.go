package pivot

// One benchmark per table and figure of the paper's evaluation (§8).  Each
// bench runs the corresponding experiment driver at the bench preset (a
// scaled-down workload that preserves the protocol shapes; see
// EXPERIMENTS.md) and reports the headline series as custom metrics, so
// `go test -bench=. -benchmem` regenerates every result in one command.
// For full-scale sweeps use `go run ./cmd/pivot-bench -preset paper`.

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// benchPreset returns the workload used by the benchmark suite.
func benchPreset() experiments.Preset {
	p := experiments.Quick()
	p.N = 24
	p.DBar = 1
	p.B = 2
	p.H = 2
	p.W = 1
	p.Ms = []int{2, 3}
	p.Ns = []int{16, 48}
	p.DBars = []int{1, 2}
	p.Bs = []int{2, 4}
	p.Hs = []int{1, 2}
	p.Ws = []int{1, 2}
	p.Trials = 1
	p.AccuracyN = 150
	return p
}

// runExperiment executes one driver per iteration and reports the last
// row's series as metrics (seconds, or accuracy for Table 3).
func runExperiment(b *testing.B, fn func(experiments.Preset) (*experiments.Result, error)) {
	b.Helper()
	p := benchPreset()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = fn(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil && len(res.Rows) > 0 {
		last := res.Rows[len(res.Rows)-1]
		for name, v := range last.Series {
			b.ReportMetric(v, metricUnit(name, res.Unit))
		}
		b.Logf("\n%s", res.Format())
	}
}

// BenchmarkTable2CostModel regenerates Table 2 (predicted vs measured cost).
func BenchmarkTable2CostModel(b *testing.B) { runExperiment(b, experiments.Table2) }

// BenchmarkTable3Accuracy regenerates Table 3 (Pivot vs non-private accuracy).
func BenchmarkTable3Accuracy(b *testing.B) { runExperiment(b, experiments.Table3) }

// BenchmarkFig4a regenerates Figure 4a (training time vs m).
func BenchmarkFig4a(b *testing.B) { runExperiment(b, experiments.Fig4a) }

// BenchmarkFig4b regenerates Figure 4b (training time vs n).
func BenchmarkFig4b(b *testing.B) { runExperiment(b, experiments.Fig4b) }

// BenchmarkFig4c regenerates Figure 4c (training time vs d̄).
func BenchmarkFig4c(b *testing.B) { runExperiment(b, experiments.Fig4c) }

// BenchmarkFig4d regenerates Figure 4d (training time vs b).
func BenchmarkFig4d(b *testing.B) { runExperiment(b, experiments.Fig4d) }

// BenchmarkFig4e regenerates Figure 4e (training time vs h).
func BenchmarkFig4e(b *testing.B) { runExperiment(b, experiments.Fig4e) }

// BenchmarkFig4f regenerates Figure 4f (ensemble training time vs W).
func BenchmarkFig4f(b *testing.B) { runExperiment(b, experiments.Fig4f) }

// BenchmarkFig4g regenerates Figure 4g (prediction time vs m).
func BenchmarkFig4g(b *testing.B) { runExperiment(b, experiments.Fig4g) }

// BenchmarkFig4h regenerates Figure 4h (prediction time vs h).
func BenchmarkFig4h(b *testing.B) { runExperiment(b, experiments.Fig4h) }

// BenchmarkFig5a regenerates Figure 5a (Pivot vs SPDZ-DT vs NPD-DT, vary m).
func BenchmarkFig5a(b *testing.B) { runExperiment(b, experiments.Fig5a) }

// BenchmarkFig5b regenerates Figure 5b (Pivot vs SPDZ-DT vs NPD-DT, vary n).
func BenchmarkFig5b(b *testing.B) { runExperiment(b, experiments.Fig5b) }

// BenchmarkAblationArgmax compares the paper's linear oblivious argmax with
// the tournament variant (design-choice ablation; not a paper figure).
func BenchmarkAblationArgmax(b *testing.B) { runExperiment(b, experiments.AblationArgmax) }

// BenchmarkAblationParallelDecrypt isolates the "-PP" parallel threshold
// decryption speedup (§8.3: up to 2.7x on 6 cores).
func BenchmarkAblationParallelDecrypt(b *testing.B) {
	runExperiment(b, experiments.AblationParallelDecrypt)
}

// BenchmarkAblationHideLevels quantifies the §5.2 privacy/efficiency
// trade-off: enhanced-protocol training and prediction time per hide level.
func BenchmarkAblationHideLevels(b *testing.B) { runExperiment(b, experiments.AblationHideLevels) }

// BenchmarkAblationCriterion compares secure Gini with the secure entropy
// (ID3/C4.5) criterion built on the MPC logarithm.
func BenchmarkAblationCriterion(b *testing.B) { runExperiment(b, experiments.AblationCriterion) }

// BenchmarkPSIAlignment measures the initialization stage's private set
// intersection (§3.1) as per-party set size grows.
func BenchmarkPSIAlignment(b *testing.B) { runExperiment(b, experiments.PSIAlignment) }

// BenchmarkPhaseBreakdown reports per-phase training time (Table 2 columns).
func BenchmarkPhaseBreakdown(b *testing.B) { runExperiment(b, experiments.PhaseBreakdown) }

// BenchmarkPaillierAcceleration reports the Paillier acceleration layer's
// ops/sec comparison (sequential vs parallel vs precomputed) plus the
// end-to-end training speedup; `pivot-bench -exp paillier -json
// BENCH_paillier.json` persists the same numbers as the perf baseline.
func BenchmarkPaillierAcceleration(b *testing.B) { runExperiment(b, experiments.PaillierBench) }

// BenchmarkServe replays the serving layer's concurrent request stream
// against per-request and micro-batched configurations under simulated
// WAN latency; `pivot-bench -exp serve -json BENCH_serve.json` persists
// the same numbers as the perf baseline.
func BenchmarkServe(b *testing.B) { runExperiment(b, experiments.ServeBench) }

// benchTrainDT measures one end-to-end TrainDecisionTree run per iteration.
func benchTrainDT(b *testing.B, workers, poolCapacity int) {
	b.Helper()
	ds := SyntheticClassification(48, 6, 2, 2.0, 1)
	cfg := DefaultConfig()
	cfg.KeyBits = 256
	cfg.Workers = workers
	cfg.PoolCapacity = poolCapacity
	cfg.Seed = 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fed, err := NewFederation(ds, 3, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fed.TrainDecisionTree(); err != nil {
			b.Fatal(err)
		}
		fed.Close()
	}
}

// BenchmarkTrainSequential is the seed configuration: one worker, no
// randomness pool — every encryption pays a full modular exponentiation.
func BenchmarkTrainSequential(b *testing.B) { benchTrainDT(b, 1, -1) }

// BenchmarkTrainAccelerated is the default configuration: all cores plus
// the precomputed randomness pool.
func BenchmarkTrainAccelerated(b *testing.B) { benchTrainDT(b, 0, 0) }

// metricUnit builds a whitespace-free unit label (ReportMetric requirement).
func metricUnit(name, unit string) string {
	u := name + "/" + unit
	u = strings.ReplaceAll(u, " ", "_")
	if i := strings.IndexByte(u, '('); i > 0 {
		u = u[:i]
	}
	return strings.TrimSuffix(u, "_")
}

#!/usr/bin/env bash
# ci/daemon-smoke.sh — boot a pivot-serve daemon, drive it with
# pivot-predict over the wire protocol, assert the leg's invariants, and
# require a clean drain.  One invocation is one daemon lifecycle; CI calls
# it several times (plain, sharded, journal-restart, incremental update)
# instead of copy-pasting the boot/probe/drain skeleton per leg.
#
# Usage: ci/daemon-smoke.sh -port N -data CSV [options]
#   -port N          listen port (required; daemon log: /tmp/smoke_<port>.log)
#   -data CSV        training + prediction CSV (required)
#   -lanes N         session pool width (default 1)
#   -auth TOKEN      shared auth token, passed to daemon and client
#   -state-dir DIR   journal the registry to DIR (persists across legs)
#   -no-train        restart leg: serve the journaled model, skip training,
#                    and assert the journal was actually restored
#   -update CSV      incremental leg: absorb CSV of appended labelled
#                    samples via the update op before predicting, and
#                    assert the daemon installed version 2
#   -expect-batch    assert micro-batching coalesced (max_batch >= 2)
#   -expect PATTERN  extra grep against the daemon log after drain
set -euo pipefail

PORT="" DATA="" LANES=1 AUTH="" STATE_DIR="" UPDATE_CSV="" EXPECT=""
NO_TRAIN=0 EXPECT_BATCH=0
while [ $# -gt 0 ]; do
  case "$1" in
    -port)         PORT=$2; shift 2 ;;
    -data)         DATA=$2; shift 2 ;;
    -lanes)        LANES=$2; shift 2 ;;
    -auth)         AUTH=$2; shift 2 ;;
    -state-dir)    STATE_DIR=$2; shift 2 ;;
    -no-train)     NO_TRAIN=1; shift ;;
    -update)       UPDATE_CSV=$2; shift 2 ;;
    -expect-batch) EXPECT_BATCH=1; shift ;;
    -expect)       EXPECT=$2; shift 2 ;;
    *) echo "daemon-smoke: unknown flag $1" >&2; exit 2 ;;
  esac
done
if [ -z "$PORT" ] || [ -z "$DATA" ]; then
  echo "daemon-smoke: -port and -data are required" >&2
  exit 2
fi

go build -o /tmp/pivot-serve ./cmd/pivot-serve

SERVE_LOG=/tmp/smoke_${PORT}.log
PREDICT_LOG=/tmp/smoke_${PORT}_predict.log
SERVE_ARGS=(-data "$DATA" -classes 2 -m 3 -keybits 256 -depth 2 -splits 3
            -lanes "$LANES" -addr "127.0.0.1:$PORT")
CLIENT_ARGS=(-remote "127.0.0.1:$PORT" -name dt -retry 5s)
[ -n "$AUTH" ] && SERVE_ARGS+=(-auth "$AUTH") && CLIENT_ARGS+=(-auth "$AUTH")
[ -n "$STATE_DIR" ] && SERVE_ARGS+=(-state-dir "$STATE_DIR")
[ "$NO_TRAIN" = 1 ] && SERVE_ARGS+=(-train "")

/tmp/pivot-serve "${SERVE_ARGS[@]}" > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for i in $(seq 1 120); do
  grep -q listening "$SERVE_LOG" && break
  sleep 1
done
grep -q listening "$SERVE_LOG" || { cat "$SERVE_LOG"; exit 1; }

# Incremental leg: absorb the appended samples first so the predictions
# below are served by the refreshed model at version 2.
if [ -n "$UPDATE_CSV" ]; then
  go run ./cmd/pivot-predict "${CLIENT_ARGS[@]}" -classes 2 \
    -update "$UPDATE_CSV" | tee "$PREDICT_LOG.update"
  grep -q -- '-> v2' "$PREDICT_LOG.update"
fi

go run ./cmd/pivot-predict "${CLIENT_ARGS[@]}" -classes 2 \
  -data "$DATA" -conns 6 -shutdown | tee "$PREDICT_LOG"

# The daemon must drain cleanly (wait fails on a non-zero exit).
wait $SERVE_PID
cat "$SERVE_LOG"

if [ "$EXPECT_BATCH" = 1 ]; then
  mb=$(sed -n 's/.*max_batch=\([0-9]*\).*/\1/p' "$PREDICT_LOG")
  test -n "$mb" && test "$mb" -ge 2
fi
if [ -n "$UPDATE_CSV" ]; then
  # The daemon's exit stats count the installed incremental update.
  grep -q 'updates 1' "$SERVE_LOG"
fi
if [ "$NO_TRAIN" = 1 ]; then
  grep -q 'restored 1 model' "$SERVE_LOG"
fi
if [ -n "$EXPECT" ]; then
  grep -q "$EXPECT" "$SERVE_LOG"
fi
echo "daemon-smoke: port $PORT leg passed"

package pivot

import (
	"testing"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.KeyBits = 256
	cfg.Tree = TreeHyper{MaxDepth: 2, MaxSplits: 3, MinSamplesSplit: 2, LeafOnZeroGain: true}
	cfg.NumTrees = 2
	return cfg
}

func TestFacadeTrainPredict(t *testing.T) {
	ds := SyntheticClassification(40, 6, 2, 3.0, 5)
	fed, err := NewFederation(ds, 3, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	model, err := fed.TrainDecisionTree()
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 10; i++ {
		pred, err := fed.Predict(model, i)
		if err != nil {
			t.Fatal(err)
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	if correct < 7 {
		t.Fatalf("facade DT training accuracy %d/10", correct)
	}
	if fed.Stats().Encryptions == 0 {
		t.Fatal("stats not wired through facade")
	}
}

func TestFacadePredictSample(t *testing.T) {
	ds := SyntheticClassification(30, 4, 2, 3.0, 6)
	fed, err := NewFederation(ds, 2, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	model, err := fed.TrainDecisionTree()
	if err != nil {
		t.Fatal(err)
	}
	parts := fed.Parts()
	got, err := fed.PredictSample(model, [][]float64{parts[0].X[3], parts[1].X[3]})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fed.Predict(model, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("PredictSample %v != Predict %v", got, want)
	}
	if _, err := fed.PredictSample(model, [][]float64{{1}}); err == nil {
		t.Fatal("expected slice-count validation error")
	}
}

func TestFacadeUnifiedAPI(t *testing.T) {
	ds := SyntheticClassification(24, 4, 2, 3.0, 8)
	fed, err := NewFederation(ds, 2, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	// An empty TrainSpec defaults to a single decision tree.
	mdl, err := fed.Train(TrainSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if mdl.Kind() != KindDT || mdl.NumClasses() != 2 {
		t.Fatalf("kind %q classes %d", mdl.Kind(), mdl.NumClasses())
	}
	tree, ok := mdl.(*Model)
	if !ok {
		t.Fatalf("Train returned %T, want *Model", mdl)
	}

	// The unified entry points agree with the deprecated typed wrappers.
	all, err := fed.PredictAll(mdl)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != ds.N() {
		t.Fatalf("PredictAll returned %d predictions", len(all))
	}
	old, err := fed.PredictDataset(tree)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if all[i] != old[i] {
			t.Fatalf("sample %d: PredictAll %v != PredictDataset %v", i, all[i], old[i])
		}
	}
	at, err := fed.PredictAt(mdl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if at != all[3] {
		t.Fatalf("PredictAt %v != PredictAll[3] %v", at, all[3])
	}
	parts := fed.Parts()
	one, err := fed.PredictOne(mdl, [][]float64{parts[0].X[3], parts[1].X[3]})
	if err != nil {
		t.Fatal(err)
	}
	if one != at {
		t.Fatalf("PredictOne %v != PredictAt %v", one, at)
	}

	// Error surfaces.
	if _, err := fed.Train(TrainSpec{Model: "svm"}); err == nil {
		t.Fatal("expected unknown-kind training error")
	}
	if _, err := fed.PredictAt(mdl, ds.N()); err == nil {
		t.Fatal("expected index range error")
	}
	if _, err := fed.PredictOne(mdl, [][]float64{{1}}); err == nil {
		t.Fatal("expected slice-count validation error")
	}
}

func TestFacadeEnsembles(t *testing.T) {
	if testing.Short() {
		t.Skip("slow protocol run")
	}
	ds := SyntheticClassification(24, 4, 2, 3.0, 7)
	cfg := fastConfig()
	fed, err := NewFederation(ds, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	fm, err := fed.TrainRandomForest()
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Trees) != cfg.NumTrees {
		t.Fatalf("forest size %d", len(fm.Trees))
	}
	if _, err := fed.PredictForest(fm, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAlignedFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow protocol run")
	}
	// Three clients with overlapping row subsets of a common universe: the
	// aligned federation must train on exactly the intersection, with every
	// client's rows in the same (id-sorted) order.
	const universe = 30
	ds := SyntheticClassification(universe, 6, 2, 3.0, 9)
	parts, err := VerticalPartition(ds, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Client c keeps rows {c, c+1, ..., 24+c}; intersection = rows 2..24.
	ids := make([][]string, 3)
	for c := range parts {
		var rows []int
		for r := c; r < 25+c; r++ {
			rows = append(rows, r)
			ids[c] = append(ids[c], rowID(r))
		}
		p, err := parts[c].SelectRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		parts[c] = p
	}
	fed, common, err := NewAlignedFederation(parts, ids, TestPSIGroup(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if len(common) != 23 {
		t.Fatalf("intersection size %d, want 23", len(common))
	}
	for _, p := range fed.Parts() {
		if p.N != 23 {
			t.Fatalf("client %d has %d aligned rows", p.Client, p.N)
		}
	}
	// Rows must be aligned across clients: reassemble sample 0 and check it
	// matches one original row of ds.
	model, err := fed.TrainDecisionTree()
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Nodes) == 0 {
		t.Fatal("empty model from aligned federation")
	}
	if _, err := fed.Predict(model, 0); err != nil {
		t.Fatal(err)
	}
}

func rowID(r int) string { return "row-" + string(rune('A'+r/10)) + string(rune('0'+r%10)) }

func TestFacadeAlignedFederationErrors(t *testing.T) {
	ds := SyntheticClassification(8, 4, 2, 1.0, 3)
	parts, err := VerticalPartition(ds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Mismatched id-list length.
	ids := [][]string{{"a"}, {"a", "b", "c", "d", "e", "f", "g", "h"}}
	if _, _, err := NewAlignedFederation(parts, ids, TestPSIGroup(), fastConfig()); err == nil {
		t.Fatal("expected id/row count mismatch error")
	}
	// Disjoint universes: empty intersection must be rejected.
	idsA := make([]string, 8)
	idsB := make([]string, 8)
	for i := range idsA {
		idsA[i] = rowID(i)
		idsB[i] = rowID(i + 50)
	}
	if _, _, err := NewAlignedFederation(parts, [][]string{idsA, idsB}, TestPSIGroup(), fastConfig()); err == nil {
		t.Fatal("expected empty-intersection error")
	}
}

func TestFacadeErrors(t *testing.T) {
	ds := SyntheticClassification(10, 2, 2, 1.0, 8)
	if _, err := NewFederation(ds, 5, fastConfig()); err == nil {
		t.Fatal("expected error: more clients than features")
	}
	fed, err := NewFederation(ds, 2, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	model, err := fed.TrainDecisionTree()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Predict(model, 99); err == nil {
		t.Fatal("expected index range error")
	}
}
